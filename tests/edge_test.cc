// Edge cases across module boundaries: degenerate cluster sizes, empty
// inputs, single-category variables, and small-scale end-to-end runs.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/metrics.h"
#include "pipeline/analytics_pipeline.h"
#include "pipeline/datagen.h"
#include "sql/engine.h"
#include "stream/streaming_transfer.h"
#include "transform/transformer.h"
#include "transform/udfs.h"

namespace sqlink {
namespace {

TEST(ClusterTest, HostNameRoundTrip) {
  ScopedTempDir temp("cluster_test");
  auto cluster = Cluster::Make(3, temp.path());
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ((*cluster)->num_nodes(), 3);
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ((*cluster)->NodeFromHostName((*cluster)->HostName(n)), n);
    EXPECT_TRUE(std::filesystem::exists((*cluster)->NodeLocalDir(n)));
  }
  EXPECT_EQ((*cluster)->NodeFromHostName("node9"), -1);
  EXPECT_EQ((*cluster)->NodeFromHostName("othermachine"), -1);
  EXPECT_EQ((*cluster)->NodeFromHostName("nodeX"), -1);
  EXPECT_TRUE(Cluster::Make(0, temp.path()).status().IsInvalidArgument());
}

TEST(MetricsTest, CountersAccumulateAndReset) {
  MetricsRegistry metrics;
  metrics.Increment("a");
  metrics.Add("a", 4);
  metrics.Add("b", -2);
  EXPECT_EQ(metrics.Get("a"), 5);
  EXPECT_EQ(metrics.Get("b"), -2);
  EXPECT_EQ(metrics.Get("missing"), 0);
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  metrics.Reset();
  EXPECT_EQ(metrics.Get("a"), 0);
}

class SingleNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("single_node");
    auto cluster = Cluster::Make(1, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
    dfs_ = std::make_shared<Dfs>(*cluster, DfsOptions{});
    CartsWorkloadOptions data;
    data.num_users = 50;
    data.num_carts = 500;
    ASSERT_TRUE(GenerateCartsWorkload(engine_.get(), data).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
  DfsPtr dfs_;
};

TEST_F(SingleNodeTest, FullPipelineOnOneWorker) {
  // n = 1 degenerates every parallel structure to a single lane; the whole
  // paper pipeline must still work (one SQL worker, one ML worker).
  AnalyticsPipeline pipeline(engine_, dfs_);
  TransformRequest request;
  request.prep_sql = CartsPrepQuery();
  request.recode_columns = {"gender", "abandoned"};
  request.codings["gender"] = CodingScheme::kDummy;
  for (ConnectApproach approach :
       {ConnectApproach::kNaive, ConnectApproach::kInSql,
        ConnectApproach::kInSqlStream}) {
    PipelineOptions options;
    options.approach = approach;
    options.use_cache = false;
    auto result = pipeline.Prepare(request, options);
    ASSERT_TRUE(result.ok())
        << ConnectApproachToString(approach) << ": " << result.status();
    EXPECT_GT(result->dataset.TotalRows(), 0u);
  }
}

TEST_F(SingleNodeTest, StreamingWithManySplitsOnOneWorker) {
  StreamTransferOptions options;
  options.splits_per_worker = 4;  // m = 4 ML workers off one SQL worker.
  auto result = StreamingTransfer::Run(engine_.get(),
                                       "SELECT cartid FROM carts", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 500u);
  EXPECT_EQ(result->stats.num_splits, 4);
}

class EdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("edge_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
    ASSERT_TRUE(RegisterTransformUdfs(engine_.get()).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(EdgeCaseTest, EmptyTableThroughEverything) {
  auto empty = engine_->MakeTable(
      "empty", Schema::Make({{"s", DataType::kString},
                             {"v", DataType::kInt64}}));
  ASSERT_TRUE(engine_->catalog()->RegisterTable(empty).ok());
  EXPECT_EQ((*engine_->ExecuteSql("SELECT * FROM empty"))->TotalRows(), 0u);
  EXPECT_EQ((*engine_->ExecuteSql("SELECT DISTINCT s FROM empty"))->TotalRows(),
            0u);
  EXPECT_EQ((*engine_->ExecuteSql(
                 "SELECT a.v FROM empty a, empty b WHERE a.v = b.v"))
                ->TotalRows(),
            0u);
  // Recoding an empty relation yields an empty map.
  InSqlTransformer transformer(engine_);
  auto map = transformer.ComputeRecodeMap("SELECT * FROM empty", {"s"});
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ(map->Cardinality("s"), 0);
  // Streaming an empty result delivers zero rows cleanly.
  auto streamed =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM empty");
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_EQ(streamed->dataset.TotalRows(), 0u);
}

TEST_F(EdgeCaseTest, SingleCategoryCodingRejected) {
  auto t = engine_->MakeTable(
      "mono", Schema::Make({{"c", DataType::kString}}));
  t->AppendRow(0, Row{Value::String("only")});
  t->AppendRow(1, Row{Value::String("only")});
  ASSERT_TRUE(engine_->catalog()->RegisterTable(t).ok());
  // Recoding works (one value, code 1)...
  InSqlTransformer transformer(engine_);
  auto map = transformer.ComputeRecodeMap("SELECT * FROM mono", {"c"}, "m");
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(*map->Code("c", "only"), 1);
  // ...but dummy coding a 1-level variable is meaningless and rejected.
  auto status = engine_
                    ->ExecuteSql(
                        "SELECT * FROM TABLE(dummy_code((SELECT M.recodeval "
                        "AS c FROM mono T, m M WHERE M.colname = 'c' AND "
                        "T.c = M.colval), 'c:1'))")
                    .status();
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(EdgeCaseTest, WideRecodingManyColumns) {
  // Ten categorical columns in one UDF scan.
  std::vector<Field> fields;
  for (int c = 0; c < 10; ++c) {
    fields.push_back(Field{"c" + std::to_string(c), DataType::kString});
  }
  auto t = engine_->MakeTable("wide", Schema::Make(std::move(fields)));
  for (int i = 0; i < 40; ++i) {
    Row row;
    for (int c = 0; c < 10; ++c) {
      row.push_back(Value::String("v" + std::to_string((i + c) % 3)));
    }
    t->AppendRow(static_cast<size_t>(i) % 4, std::move(row));
  }
  ASSERT_TRUE(engine_->catalog()->RegisterTable(t).ok());
  InSqlTransformer transformer(engine_);
  std::vector<std::string> columns;
  for (int c = 0; c < 10; ++c) columns.push_back("c" + std::to_string(c));
  auto map = transformer.ComputeRecodeMap("SELECT * FROM wide", columns);
  ASSERT_TRUE(map.ok()) << map.status();
  for (const std::string& column : columns) {
    EXPECT_EQ(map->Cardinality(column), 3) << column;
  }
}

TEST_F(EdgeCaseTest, StreamedRowsWithNullsAndNastyStrings) {
  auto t = engine_->MakeTable(
      "nasty", Schema::Make({{"id", DataType::kInt64},
                             {"s", DataType::kString}}));
  t->AppendRow(0, Row{Value::Int64(0), Value::String("comma, \"quote\"")});
  t->AppendRow(1, Row{Value::Int64(1), Value::Null()});
  t->AppendRow(2, Row{Value::Int64(2), Value::String("line\nbreak")});
  t->AppendRow(3, Row{Value::Int64(3), Value::String("")});
  ASSERT_TRUE(engine_->catalog()->RegisterTable(t).ok());
  auto result = StreamingTransfer::Run(engine_.get(), "SELECT * FROM nasty");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->dataset.TotalRows(), 4u);
  bool saw_null = false;
  bool saw_newline = false;
  for (const auto& partition : result->dataset.partitions) {
    for (const Row& row : partition) {
      if (row[1].is_null()) saw_null = true;
      if (row[1].is_string() &&
          row[1].string_value().find('\n') != std::string::npos) {
        saw_newline = true;
      }
    }
  }
  EXPECT_TRUE(saw_null);     // Binary wire format preserves NULLs...
  EXPECT_TRUE(saw_newline);  // ...and arbitrary bytes, unlike CSV-on-DFS.
}

}  // namespace
}  // namespace sqlink
