#ifndef SQLINK_SQL_ENGINE_H_
#define SQLINK_SQL_ENGINE_H_

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/result.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/plan.h"
#include "sql/planner.h"
#include "sql/query_registry.h"
#include "sql/query_stats.h"
#include "sql/table_udf.h"
#include "table/table.h"

namespace sqlink {

/// Per-query execution options supplied by the serving layer: cooperative
/// cancellation, the spill quota carved from the admission memory pool, and
/// the submitting tenant (recorded in the QueryRegistry). Defaults mean
/// "untracked standalone query" — not cancellable, unlimited spill.
struct QueryOptions {
  Cancellation* cancellation = nullptr;  ///< Not owned; outlives the query.
  ByteBudgetPtr spill_budget;            ///< Null = unlimited.
  std::string tenant;                    ///< "" = no tenant attribution.
};

/// The "big SQL system": a partitioned, multi-worker SQL engine with UDF
/// extensibility. One SQL worker per cluster node, as in the paper's
/// testbed. This is the substrate the paper's In-SQL transformations and
/// streaming-transfer UDFs plug into.
///
/// Typical use:
///   auto engine = SqlEngine::Make(cluster);
///   engine->catalog()->RegisterTable(carts);
///   ASSIGN_OR_RETURN(auto result, engine->ExecuteSql(
///       "SELECT U.age, U.gender, C.amount, C.abandoned "
///       "FROM carts C, users U "
///       "WHERE C.userid = U.userid AND U.country = 'USA'"));
class SqlEngine {
 public:
  static std::shared_ptr<SqlEngine> Make(ClusterPtr cluster,
                                         MetricsRegistry* metrics = nullptr);

  /// Join-strategy knob: build sides estimated at or below this many rows
  /// are broadcast; larger ones trigger a repartition (shuffle) join.
  /// Exposed for tests and tuning.
  void set_broadcast_threshold_rows(double rows) {
    planner_options_.broadcast_threshold_rows = rows;
  }
  double broadcast_threshold_rows() const {
    return planner_options_.broadcast_threshold_rows;
  }

  /// Forces (or re-enables cost-based choice of) the physical equi-join
  /// algorithm. kAuto picks hash unless the estimated build size exceeds
  /// the hash-build memory budget.
  void set_join_strategy(JoinStrategy strategy) {
    planner_options_.join_strategy = strategy;
  }
  JoinStrategy join_strategy() const { return planner_options_.join_strategy; }

  /// Hash-build memory budget for the kAuto join choice, in bytes.
  void set_hash_build_budget_bytes(double bytes) {
    planner_options_.hash_build_budget_bytes = bytes;
  }

  /// Parses, plans and runs a statement; the result table is named
  /// `result_name` (default "result") but not registered in the catalog.
  ///
  /// `EXPLAIN select` returns a one-column table of plan-text lines
  /// (estimated rows + cumulative cost per node) without executing;
  /// `EXPLAIN ANALYZE select` executes the query and returns the plan with
  /// estimates and actuals side by side. Every executed statement is
  /// tracked: per-operator stats flow to the QueryRegistry (the /queries
  /// ops endpoint), per-node q-errors feed the sql.planner.* metrics, and
  /// queries slower than SQLINK_SLOW_QUERY_MS log a one-line record.
  Result<TablePtr> ExecuteSql(const std::string& sql,
                              const std::string& result_name = "result");

  /// ExecuteSql with serving-layer options: cancellation (checked by worker
  /// loops and blocking operators, propagated to table UDFs), a per-query
  /// spill budget, and tenant attribution in the QueryRegistry.
  Result<TablePtr> ExecuteSql(const std::string& sql,
                              const std::string& result_name,
                              const QueryOptions& options);

  /// Runs a pre-built statement/plan.
  Result<TablePtr> ExecuteStmt(const SelectStmt& stmt,
                               const std::string& result_name = "result");
  Result<TablePtr> ExecutePlan(const PlanPtr& plan,
                               const std::string& result_name = "result");

  /// Plans without executing (EXPLAIN, rewriter integration, tests).
  Result<PlanPtr> Plan(const std::string& sql);
  Result<PlanPtr> PlanStmt(const SelectStmt& stmt);

  /// The plan tree rendered as indented text with per-node estimated rows
  /// and cumulative cost (what `EXPLAIN select` prints).
  Result<std::string> ExplainSql(const std::string& sql);

  /// Executes and registers the result as a catalog table (materialized
  /// view storage for the §5 caches). Replaces an existing table.
  Result<TablePtr> MaterializeSql(const std::string& sql,
                                  const std::string& table_name);

  /// Creates an empty partitioned table shaped for this engine.
  TablePtr MakeTable(const std::string& name, SchemaPtr schema) const;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }
  ScalarFunctionRegistry* scalar_udfs() { return scalar_udfs_.get(); }
  TableUdfRegistry* table_udfs() { return &table_udfs_; }
  int num_workers() const { return num_workers_; }
  const ClusterPtr& cluster() const { return cluster_; }
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  SqlEngine(ClusterPtr cluster, MetricsRegistry* metrics);

  /// The tracked execution path every query goes through: numbers the plan,
  /// registers a QueryRecord, runs with stats collection, feeds q-error
  /// metrics and the slow-query log, finalizes the record. `stats_out`
  /// (optional) receives the filled stats tree (EXPLAIN ANALYZE).
  Result<TablePtr> RunTracked(const PlanPtr& plan, const std::string& sql,
                              const std::string& result_name,
                              std::shared_ptr<QueryStats>* stats_out,
                              const QueryOptions& options = {});

  /// A one-STRING-column table holding `text` split into lines (the result
  /// shape of EXPLAIN / EXPLAIN ANALYZE).
  TablePtr MakePlanTextTable(const std::string& text,
                             const std::string& result_name) const;

  ClusterPtr cluster_;
  int num_workers_;
  MetricsRegistry* metrics_;
  Catalog catalog_;
  std::shared_ptr<ScalarFunctionRegistry> scalar_udfs_;
  TableUdfRegistry table_udfs_;
  PlannerOptions planner_options_;
};

using SqlEnginePtr = std::shared_ptr<SqlEngine>;

}  // namespace sqlink

#endif  // SQLINK_SQL_ENGINE_H_
