# Empty compiler generated dependencies file for sqlink_rewriter.
# This may be replaced when dependencies are built.
