#ifndef SQLINK_ML_VECTOR_OPS_H_
#define SQLINK_ML_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace sqlink::ml {

/// Dense feature vector. All algorithms operate on dense doubles — the
/// paper's transformations (recoding + dummy coding) produce exactly this.
using DenseVector = std::vector<double>;

inline double Dot(const DenseVector& a, const DenseVector& b) {
  double sum = 0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

/// y += alpha * x
inline void Axpy(double alpha, const DenseVector& x, DenseVector* y) {
  for (size_t i = 0; i < x.size() && i < y->size(); ++i) {
    (*y)[i] += alpha * x[i];
  }
}

inline void Scale(double alpha, DenseVector* x) {
  for (double& v : *x) v *= alpha;
}

inline double SquaredNorm(const DenseVector& x) { return Dot(x, x); }

inline double SquaredDistance(const DenseVector& a, const DenseVector& b) {
  double sum = 0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace sqlink::ml

#endif  // SQLINK_ML_VECTOR_OPS_H_
