#ifndef SQLINK_STREAM_COORDINATOR_H_
#define SQLINK_STREAM_COORDINATOR_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "stream/socket.h"
#include "stream/wire.h"

namespace sqlink {

/// The long-standing coordinator service of §3 that bridges the big SQL and
/// big ML systems:
///
///  1. every SQL worker registers (worker id, endpoint, ML command, schema);
///  2. once all n have registered, the coordinator launches the ML job;
///  3. the ML job's SqlStreamInputFormat asks it for InputSplits — it
///     creates m = n·k splits, grouped k-per-SQL-worker, each carrying the
///     SQL worker's host as its locality hint;
///  4. ML workers register back; 5./6. the coordinator matches each to its
///     SQL worker's endpoint; 7./8. the data sockets are then peer-to-peer.
///
/// For §6 it also answers failure reports with the endpoint to re-dial.
class StreamCoordinator {
 public:
  /// Runs the job's ML side; invoked once, on a dedicated thread, when all
  /// SQL workers have registered (paper step 2).
  using MlLauncher = std::function<void(const std::string& command,
                                        const std::vector<std::string>& args)>;

  struct Options {
    int port = 0;               ///< 0 = ephemeral.
    int splits_per_worker = 1;  ///< k in m = n·k.
    MlLauncher ml_launcher;
    /// How long participants may wait on registration barriers.
    int barrier_timeout_ms = 30000;
  };

  /// Starts the accept loop on a background thread.
  static Result<std::unique_ptr<StreamCoordinator>> Start(Options options);

  /// §6 coordinator resilience (the paper suggests ZooKeeper): serializes
  /// the coordinator's durable state — registered SQL workers and the
  /// split table — so a replacement coordinator can take over matchmaking
  /// after a crash.
  std::string Checkpoint() const;

  /// Starts a coordinator restored from a checkpoint: the split table and
  /// registrations are re-established, so ML workers can immediately
  /// (re-)register and be matched without re-running the SQL side.
  static Result<std::unique_ptr<StreamCoordinator>> Resume(
      Options options, std::string_view checkpoint);

  ~StreamCoordinator();

  StreamCoordinator(const StreamCoordinator&) = delete;
  StreamCoordinator& operator=(const StreamCoordinator&) = delete;

  /// Stops the server and joins every handler. Idempotent.
  void Stop();

  int port() const { return listener_.port(); }
  std::string host() const { return "localhost"; }

  /// Observability for tests and benchmarks.
  int registered_sql_workers() const;
  int registered_ml_workers() const;
  int reported_failures() const;

 private:
  explicit StreamCoordinator(Options options) : options_(std::move(options)) {}

  void AcceptLoop();
  void HandleConnection(TcpSocket socket);

  Status HandleRegisterSql(TcpSocket* socket, const Frame& frame);
  Status HandleGetSplits(TcpSocket* socket);
  Status HandleRegisterMl(TcpSocket* socket, const Frame& frame,
                          bool is_failure);

  /// Blocks until the split table exists (all SQL workers registered).
  Status WaitForSplits();

  Options options_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::thread launcher_thread_;

  mutable std::mutex mu_;
  std::condition_variable splits_ready_cv_;
  bool stopped_ = false;
  int expected_sql_workers_ = 0;
  std::map<int, RegisterSqlMessage> sql_workers_;
  bool splits_ready_ = false;
  SplitsMessage splits_;
  int registered_ml_ = 0;
  int failures_ = 0;

  std::mutex handlers_mu_;
  std::vector<std::thread> handlers_;
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_COORDINATOR_H_
