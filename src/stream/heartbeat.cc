#include "stream/heartbeat.h"

#include <chrono>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/status_macros.h"

namespace sqlink {

HeartbeatSender::HeartbeatSender(Options options)
    : options_(std::move(options)) {}

HeartbeatSender::~HeartbeatSender() { Stop(HeartbeatMessage::kAlive); }

void HeartbeatSender::Start() {
  if (!enabled() || thread_.joinable()) return;
  thread_ = std::thread([this] { Loop(); });
}

Status HeartbeatSender::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void HeartbeatSender::MarkRevoked(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (revoked_.load(std::memory_order_relaxed)) return;
    status_ = std::move(status);
  }
  revoked_.store(true, std::memory_order_release);
  if (options_.on_revoked) options_.on_revoked();
}

Status HeartbeatSender::BeatOnce(uint8_t bye) {
  if (!control_.valid()) {
    ASSIGN_OR_RETURN(
        control_,
        TcpConnect(options_.coordinator_host, options_.coordinator_port));
  }
  HeartbeatMessage beat;
  beat.role = options_.role;
  beat.id = options_.id;
  beat.epoch = options_.epoch;
  beat.applied_seq = applied_seq_.load(std::memory_order_relaxed);
  beat.bye = bye;
  Status sent = SendFrame(&control_, FrameType::kHeartbeat, beat.Encode());
  if (!sent.ok()) {
    control_.Close();
    return sent;
  }
  auto reply = RecvFrame(&control_);
  if (!reply.ok()) {
    control_.Close();
    return reply.status();
  }
  if (reply->type == FrameType::kError) {
    // Fenced or aborted: a typed, permanent loss — not a transport blip.
    MarkRevoked(DecodeStatusPayload(reply->payload));
    return Status::OK();
  }
  if (reply->type != FrameType::kAck) {
    control_.Close();
    return Status::NetworkError("unexpected heartbeat reply");
  }
  return Status::OK();
}

void HeartbeatSender::Loop() {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  const auto ttl = interval * kLeaseIntervals;
  Clock::time_point last_ok = Clock::now();
  // The first beat goes out immediately: it is what creates the lease on
  // the coordinator, so liveness tracking starts with the attempt.
  for (;;) {
    if (revoked()) return;
    if (!options_.failpoint_name.empty()) {
      // Delay specs stall the beat right here, simulating a participant
      // that froze long enough for its lease to lapse.
      (void)SQLINK_FAILPOINT(options_.failpoint_name);
    }
    const Status status = BeatOnce(HeartbeatMessage::kAlive);
    if (revoked()) return;
    const Clock::time_point now = Clock::now();
    if (status.ok()) {
      last_ok = now;
    } else if (now - last_ok > ttl) {
      // Self-fence: the coordinator has not confirmed this lease within the
      // TTL, so it may already have handed the split to a replacement. Stop
      // before the replacement starts applying rows.
      MarkRevoked(Status::Unavailable(
          "lease expired: no coordinator ack within " +
          std::to_string(ttl.count()) + "ms (" + status.message() + ")"));
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) return;
  }
}

void HeartbeatSender::Stop(uint8_t bye) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  if (bye != HeartbeatMessage::kAlive && !revoked()) {
    // Best-effort farewell so the coordinator acts now, not at TTL expiry.
    const Status status = BeatOnce(bye);
    if (!status.ok()) {
      LOG_WARNING() << "heartbeat bye failed (lease will expire): " << status;
    }
  }
  control_.Close();
}

}  // namespace sqlink
