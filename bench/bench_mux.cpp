// Mux fabric benchmark (ISSUE 9): the PR 8 concurrency sweep (1/4/16/64
// clients) rerun over the sink→reader data plane, with the connection mux
// on and off. Each client is one full streaming-transfer pipeline (SQL scan
// → sink UDF → reader ingest), so every client opens real data channels;
// the GROUP BY serving bench never touches the data plane.
//
// The interesting property is socket economy without a latency tax: with
// SQLINK_MUX on, 64 concurrent pipelines share at most
// SQLINK_MUX_CONNS_PER_PEER pooled sockets per sink peer (the in-process
// cluster exposes one shared sink listener, i.e. one peer), while the
// unmuxed path dials one socket per split per pipeline (~64×splits). Tail
// latency must not regress: per-channel credit windows stop one slow
// channel from head-of-line-blocking its socket-mates.
//
// `bench_mux [rows]` prints the table; with SQLINK_BENCH_JSON set, one
// JSON line per (mode, concurrency) cell is emitted. `--smoke` shrinks the
// workload for CI; `--check` exits non-zero when any transfer fails, when
// mux mode opens more than 2×SQLINK_MUX_CONNS_PER_PEER×peers sockets at 64
// clients, or when mux p99 at 64 clients regresses past the unmuxed
// baseline (with headroom for scheduler noise).

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/runtime_flags.h"
#include "common/stopwatch.h"
#include "net/conn_pool.h"
#include "stream/streaming_transfer.h"

using namespace sqlink;

namespace {

struct LevelResult {
  double wall_s = 0;
  std::vector<double> latencies_ms;
  int failures = 0;
  std::string first_failure;     // status of the first failed transfer
  int64_t sockets = 0;           // data dials during the level
  int64_t coalesced_frames = 0;  // frames that shared a writev
  int64_t window_stalls = 0;     // sends parked on an empty credit window

  double qps() const {
    return wall_s > 0 ? static_cast<double>(latencies_ms.size()) / wall_s : 0;
  }
  double Percentile(double p) const {
    if (latencies_ms.empty()) return 0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const size_t index = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[index];
  }
};

/// Runs `concurrency` streaming-transfer pipelines at once (one per client
/// thread) and measures per-pipeline latency plus the data-socket count.
LevelResult RunLevel(SqlEngine* engine, int concurrency, int64_t rows,
                     bool mux_on) {
  SetMuxEnabledForTest(mux_on ? 1 : 0);
  // Drop pooled connections from the previous cell, then zero the metrics,
  // so `stream.reader.data_dials` counts exactly this cell's sockets.
  MuxConnPool::Global().ResetForTest();
  MetricsRegistry::Global().Reset();

  LevelResult result;
  std::mutex mu;
  std::atomic<int> failures{0};
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&] {
      Stopwatch latency;
      auto transfer =
          StreamingTransfer::Run(engine, "SELECT * FROM points", {});
      if (!transfer.ok() ||
          transfer->dataset.TotalRows() != static_cast<size_t>(rows)) {
        ++failures;
        std::lock_guard<std::mutex> lock(mu);
        if (result.first_failure.empty()) {
          result.first_failure = transfer.ok() ? "incomplete dataset"
                                               : transfer.status().ToString();
        }
        return;
      }
      const double ms = latency.ElapsedMicros() / 1000.0;
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_ms.push_back(ms);
    });
  }
  for (std::thread& client : clients) client.join();
  result.wall_s = wall.ElapsedSeconds();
  result.failures = failures.load();
  result.sockets = MetricsRegistry::Global().Get("stream.reader.data_dials");
  result.coalesced_frames =
      MetricsRegistry::Global().Get("net.mux.coalesced_frames");
  result.window_stalls =
      MetricsRegistry::Global().Get("net.mux.window_stalls");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  int64_t rows = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      rows = std::atoll(argv[i]);
    }
  }
  if (rows == 0) rows = smoke ? 500 : 5000;

  SetLogLevel(LogLevel::kError);
  ScopedTempDir workspace("sqlink_bench_mux");
  auto cluster = Cluster::Make(4, workspace.path());
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  auto engine = SqlEngine::Make(*cluster);
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"feature", DataType::kDouble}});
  auto table = engine->MakeTable("points", schema);
  for (int64_t i = 0; i < rows; ++i) {
    table->AppendRow(static_cast<size_t>(i) % 4,
                     Row{Value::Int64(i), Value::Double(0.5)});
  }
  if (!engine->catalog()->RegisterTable(table).ok()) {
    std::fprintf(stderr, "register table failed\n");
    return 1;
  }

  // All in-process sinks register with the one process-wide MuxSinkServer
  // listener, so mux mode sees a single peer endpoint. (A real deployment
  // has one peer per worker host; the per-peer cap is what the formula
  // checks either way.)
  const int peers = 1;
  const int64_t socket_cap =
      2 * static_cast<int64_t>(MuxConnsPerPeer()) * peers;

  std::printf("=== mux fabric: concurrent pipelines vs sockets + tail ===\n");
  std::printf("rows per transfer: %lld, conns per peer: %d, peers: %d\n\n",
              static_cast<long long>(rows), MuxConnsPerPeer(), peers);
  std::printf("%5s %12s %10s %10s %10s %9s %9s %9s\n", "mux", "concurrency",
              "qps", "p50(ms)", "p99(ms)", "sockets", "coalesced", "stalls");

  double mux_p99_at_64 = 0;
  double unmux_p99_at_64 = 0;
  int64_t mux_sockets_at_64 = 0;
  int total_failures = 0;
  for (int concurrency : {1, 4, 16, 64}) {
    for (bool mux_on : {false, true}) {
      LevelResult level = RunLevel(engine.get(), concurrency, rows, mux_on);
      total_failures += level.failures;
      if (level.failures > 0) {
        std::fprintf(stderr, "mux=%s concurrency=%d: %d failures (first: %s)\n",
                     mux_on ? "on" : "off", concurrency, level.failures,
                     level.first_failure.c_str());
      }
      if (concurrency == 64) {
        (mux_on ? mux_p99_at_64 : unmux_p99_at_64) = level.Percentile(0.99);
        if (mux_on) mux_sockets_at_64 = level.sockets;
      }
      std::printf("%5s %12d %10.1f %10.2f %10.2f %9lld %9lld %9lld\n",
                  mux_on ? "on" : "off", concurrency, level.qps(),
                  level.Percentile(0.50), level.Percentile(0.99),
                  static_cast<long long>(level.sockets),
                  static_cast<long long>(level.coalesced_frames),
                  static_cast<long long>(level.window_stalls));
      sqlink::bench::BenchJsonLine("mux_transfer")
          .Param("rows", rows)
          .Param("mux", mux_on)
          .Param("concurrency", static_cast<int64_t>(concurrency))
          .Param("qps", level.qps())
          .Param("p50_ms", level.Percentile(0.50))
          .Param("p99_ms", level.Percentile(0.99))
          .Param("sockets", level.sockets)
          .Param("coalesced_frames", level.coalesced_frames)
          .Param("window_stalls", level.window_stalls)
          .Param("failures", static_cast<int64_t>(level.failures))
          .Param("smoke", smoke)
          .Emit(level.wall_s * 1000.0);
    }
  }
  SetMuxEnabledForTest(-1);
  MuxConnPool::Global().ResetForTest();

  std::printf("\nsockets at 64 clients: %lld muxed (cap %lld), "
              "p99 %0.2fms muxed vs %0.2fms unmuxed\n",
              static_cast<long long>(mux_sockets_at_64),
              static_cast<long long>(socket_cap), mux_p99_at_64,
              unmux_p99_at_64);

  if (check) {
    if (total_failures > 0) {
      std::fprintf(stderr, "--check: %d failed transfers\n", total_failures);
      return 1;
    }
    if (mux_sockets_at_64 > socket_cap) {
      std::fprintf(stderr,
                   "--check: mux mode dialed %lld data sockets at 64 "
                   "clients, cap is 2 x %d conns/peer x %d peers = %lld\n",
                   static_cast<long long>(mux_sockets_at_64),
                   MuxConnsPerPeer(), peers,
                   static_cast<long long>(socket_cap));
      return 1;
    }
    // "No worse than unmuxed" with headroom: the suite runs on shared CI
    // machines, so a hard <= would flake on scheduler noise alone.
    const double p99_cap = unmux_p99_at_64 * 1.25 + 50.0;
    if (mux_p99_at_64 > p99_cap) {
      std::fprintf(stderr,
                   "--check: mux p99 at 64 clients is %.2fms, unmuxed is "
                   "%.2fms (allowed %.2fms)\n",
                   mux_p99_at_64, unmux_p99_at_64, p99_cap);
      return 1;
    }
  }
  return 0;
}
