#ifndef SQLINK_SERVING_ADMISSION_H_
#define SQLINK_SERVING_ADMISSION_H_

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/byte_budget.h"
#include "common/metrics.h"
#include "common/result.h"

namespace sqlink {

/// Knobs of the admission controller. FromEnv() reads the serving env vars:
///
///   SQLINK_MAX_CONCURRENT_QUERIES  max queries running at once (default 8)
///   SQLINK_ADMISSION_MEM_BYTES     global memory/spill pool every admitted
///                                  query reserves from (default 256 MiB;
///                                  0 = unlimited)
///   SQLINK_QUERY_MEM_BYTES         reservation per admitted query; also the
///                                  query's spill-budget cap (default 32 MiB)
///   SQLINK_ADMISSION_QUEUE_CAP     bounded admission queue length
///                                  (default 64; a full queue rejects)
///   SQLINK_ADMISSION_QUEUE_MS      max queue wait before a typed
///                                  kOverloaded rejection (default 5000)
///   SQLINK_TENANT_QUOTA            per-tenant weights "alice=3,bob=1";
///                                  unlisted tenants get weight 1
struct AdmissionOptions {
  int max_concurrent = 8;
  int64_t memory_budget_bytes = 256LL << 20;
  int64_t per_query_mem_bytes = 32LL << 20;
  size_t queue_capacity = 64;
  int queue_timeout_ms = 5000;
  std::map<std::string, double> tenant_weights;

  static AdmissionOptions FromEnv();
};

class AdmissionController;

/// RAII admission grant: holding a ticket IS being admitted. The destructor
/// returns the concurrency slot and memory reservation to the controller
/// and wakes the fairest queued waiter.
class AdmissionTicket {
 public:
  ~AdmissionTicket();

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  /// The query's spill quota, carved from the admission memory pool
  /// (capacity = per_query_mem_bytes; null capacity 0 = unlimited pool).
  const ByteBudgetPtr& spill_budget() const { return spill_budget_; }
  const std::string& tenant() const { return tenant_; }
  /// How long this query waited in the admission queue (0 = immediate).
  int64_t queue_wait_ms() const { return queue_wait_ms_; }

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, std::string tenant,
                  ByteBudgetPtr spill_budget, int64_t queue_wait_ms)
      : controller_(controller),
        tenant_(std::move(tenant)),
        spill_budget_(std::move(spill_budget)),
        queue_wait_ms_(queue_wait_ms) {}

  AdmissionController* controller_;
  std::string tenant_;
  ByteBudgetPtr spill_budget_;
  int64_t queue_wait_ms_ = 0;
};

using AdmissionTicketPtr = std::unique_ptr<AdmissionTicket>;

/// Gates incoming queries against a max-concurrency knob and a global
/// memory/spill pool, queueing excess demand in a bounded, tenant-fair
/// queue. Fairness is stride (virtual-time) scheduling: each waiting tenant
/// advances a virtual clock by 1/weight per admitted query, and the waiter
/// with the smallest virtual start time is granted first — a tenant with
/// weight 3 is admitted three times as often as a tenant with weight 1 when
/// both keep the queue non-empty, while an idle tenant's unused share never
/// accumulates (its clock is pulled up to "now" when it returns).
///
/// Overload degrades gracefully instead of hanging or OOMing: a full queue
/// rejects immediately and a queued query that outlives the queue timeout is
/// rejected, both with a typed kOverloaded status the wire protocol
/// preserves end-to-end. Failpoints `admission.reject` (reject as if
/// overloaded) and `admission.delay` (sleep inside Admit) inject overload
/// behavior for tests.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until the query is admitted (a ticket) or rejected (typed
  /// kOverloaded: full queue, queue timeout, or shutdown). Thread-safe.
  Result<AdmissionTicketPtr> Admit(const std::string& tenant);

  /// Rejects all current and future waiters (server shutdown).
  void Close();

  int active() const;
  size_t queued() const;
  /// True when the admission queue is at capacity — the /healthz 503 signal.
  bool saturated() const;
  /// {"active":N,"queued":N,"queue_capacity":N,...} for /healthz bodies.
  std::string StatsJson() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Waiter {
    uint64_t id = 0;
    std::string tenant;
    double vstart = 0.0;
  };
  struct TenantClock {
    double next_start = 0.0;
  };

  double WeightOf(const std::string& tenant) const;
  /// True when a new query fits right now (slot + memory). Caller holds mu_.
  bool HasCapacityLocked() const;
  /// Grants queued waiters (fairest first) while capacity lasts; notifies.
  void GrantWaitersLocked();
  /// Takes one slot + memory reservation. Caller holds mu_.
  void TakeCapacityLocked();
  /// Ticket destructor path: frees capacity, grants the next waiter(s).
  void Release();
  /// Drops the waiter with `id` from the queue (timeout/shutdown path).
  void RemoveWaiterLocked(uint64_t id);

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  int active_ = 0;
  int64_t memory_used_ = 0;
  uint64_t next_waiter_id_ = 1;
  double vtime_ = 0.0;  ///< Virtual clock: max vstart ever granted.
  std::deque<Waiter> waiters_;
  std::set<uint64_t> granted_ids_;  ///< Granted, not yet picked up.
  std::map<std::string, TenantClock> tenants_;

  Counter* admitted_total_;
  Counter* rejected_total_;
  Counter* queued_total_;
  Gauge* active_gauge_;
  Gauge* queue_depth_gauge_;
  Histogram* queue_wait_ms_;

  friend class AdmissionTicket;
};

}  // namespace sqlink

#endif  // SQLINK_SERVING_ADMISSION_H_
