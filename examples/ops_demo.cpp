// Live-observability demo: starts the embedded ops server, runs an
// EXPLAIN ANALYZE over a join+filter+DISTINCT query (populating the
// planner q-error metrics), then loops streaming transfers until the
// deadline so /metrics, /queries, and /tracez can be curled while work is
// genuinely in flight.
//
//   SQLINK_OPS_PORT=0 ./ops_demo [seconds]
//
// Prints "OPS_PORT=<port>" once the server is up (CI greps for it), e.g.:
//
//   curl -s 127.0.0.1:$port/metrics | grep sqlink_sql_planner_qerror
//   curl -s 127.0.0.1:$port/queries | python3 -m json.tool

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "obs/ops_server.h"
#include "pipeline/datagen.h"
#include "sql/engine.h"
#include "stream/streaming_transfer.h"

namespace {

using namespace sqlink;

int Run(double seconds) {
  // Tracing on so /tracez serves the transfer spans.
  Tracer::Global().set_enabled(true);

  ScopedTempDir workspace("ops_demo");
  auto cluster = Cluster::Make(4, workspace.path());
  if (!cluster.ok()) return 1;
  SqlEnginePtr engine = SqlEngine::Make(*cluster);

  CartsWorkloadOptions data;
  data.num_users = 2000;
  data.num_carts = 20000;
  if (!GenerateCartsWorkload(engine.get(), data).ok()) return 1;

  // SQLINK_OPS_PORT when set (0 = ephemeral), else an ephemeral port.
  auto server = OpsServer::StartFromEnv();
  if (!server.ok()) {
    std::fprintf(stderr, "ops server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  if (*server == nullptr) {
    OpsServer::Options options;
    server = OpsServer::Start(options);
    if (!server.ok()) return 1;
  }
  std::printf("OPS_PORT=%d\n", (*server)->port());
  std::fflush(stdout);

  // One analyzed join+filter+DISTINCT query seeds the q-error metrics and
  // the /queries finished ring.
  auto analyzed = engine->ExecuteSql(
      "EXPLAIN ANALYZE SELECT DISTINCT U.age, U.gender FROM carts C, users U "
      "WHERE C.userid = U.userid AND C.amount > 50");
  if (!analyzed.ok()) {
    std::fprintf(stderr, "explain analyze: %s\n",
                 analyzed.status().ToString().c_str());
    return 1;
  }
  for (size_t p = 0; p < (*analyzed)->num_partitions(); ++p) {
    for (const Row& row : (*analyzed)->partition(p)) {
      std::printf("%s\n", row[0].string_value().c_str());
    }
  }
  std::fflush(stdout);

  // Streaming transfers until the deadline keep live queries (and their
  // transfer counters) visible on the ops endpoint.
  const std::string transfer_query =
      "SELECT cartid, amount, nitems FROM carts WHERE amount > 50";
  Stopwatch deadline;
  int transfers = 0;
  while (deadline.ElapsedSeconds() < seconds) {
    StreamTransferOptions options;
    options.splits_per_worker = 2;
    auto result = StreamingTransfer::Run(engine.get(), transfer_query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "transfer: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    ++transfers;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("DONE transfers=%d\n", transfers);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sqlink::SetLogLevel(sqlink::LogLevel::kWarning);
  const double seconds = argc > 1 ? std::atof(argv[1]) : 5.0;
  return Run(seconds);
}
