# Empty compiler generated dependencies file for bench_mq_transfer.
# This may be replaced when dependencies are built.
