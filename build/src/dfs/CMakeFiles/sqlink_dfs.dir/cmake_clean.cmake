file(REMOVE_RECURSE
  "CMakeFiles/sqlink_dfs.dir/dfs.cc.o"
  "CMakeFiles/sqlink_dfs.dir/dfs.cc.o.d"
  "CMakeFiles/sqlink_dfs.dir/line_reader.cc.o"
  "CMakeFiles/sqlink_dfs.dir/line_reader.cc.o.d"
  "libsqlink_dfs.a"
  "libsqlink_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
