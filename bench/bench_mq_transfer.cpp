// §8 future-work study: direct socket streaming (§3) vs broker-mediated
// transfer (Kafka-like message queue). Compares
//   - failure-free transfer time, and
//   - recovery cost after a mid-stream consumer failure: the §6 design
//     replays the whole stream from the retained log, while the broker
//     resumes from the last committed offset (bounded recovery tail).

#include <string>

#include "bench_util.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "mq/mq_transfer.h"
#include "stream/streaming_transfer.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 300000);
  auto env = BenchEnv::Make(rows);
  auto table = env->engine->MaterializeSql(
      "SELECT cartid, amount, nitems, year FROM carts", "src");
  if (!table.ok()) return 1;
  const size_t expected = (*table)->TotalRows();
  auto broker = std::make_shared<MessageBroker>();

  std::printf("=== transfer mechanisms: direct sockets vs message broker ===\n");
  std::printf("rows: %zu\n\n", expected);
  std::printf("%-28s %10s %10s %18s\n", "mechanism", "time(s)", "rows",
              "recovery re-read");

  // Failure-free runs.
  {
    Stopwatch watch;
    auto direct =
        StreamingTransfer::Run(env->engine.get(), "SELECT * FROM src");
    if (!direct.ok()) return 1;
    std::printf("%-28s %10.3f %10zu %18s\n", "direct sockets (§3)",
                watch.ElapsedSeconds(), direct->dataset.TotalRows(), "-");
  }
  {
    Stopwatch watch;
    auto mq = MqTransfer::Run(env->engine.get(), broker, "SELECT * FROM src");
    if (!mq.ok()) return 1;
    std::printf("%-28s %10.3f %10zu %18s\n", "message broker (§8)",
                watch.ElapsedSeconds(), mq->dataset.TotalRows(), "-");
  }

  // Runs with one injected mid-stream consumer failure.
  {
    StreamTransferOptions options;
    options.sink.resilient = true;
    options.reader.recovery_enabled = true;
    ScopedFailpoint fault(
        "stream.reader.row.split1",
        "after(" + std::to_string(expected / 16 - 1) + "):error(1)");
    Stopwatch watch;
    auto direct = StreamingTransfer::Run(env->engine.get(),
                                         "SELECT * FROM src", options);
    if (!direct.ok()) return 1;
    std::printf("%-28s %10.3f %10zu %18s\n", "direct + failure (§6)",
                watch.ElapsedSeconds(), direct->dataset.TotalRows(),
                "full split replay");
  }
  {
    MqTransferOptions options;
    ScopedFailpoint fault(
        "mq.reader.crash.p1",
        "after(" + std::to_string(expected / 16 - 1) + "):error(1)");
    Stopwatch watch;
    auto mq = MqTransfer::Run(env->engine.get(), broker, "SELECT * FROM src",
                              options);
    if (!mq.ok()) return 1;
    std::printf("%-28s %10.3f %10zu %15lld msg\n", "broker + failure (§8)",
                watch.ElapsedSeconds(), mq->dataset.TotalRows(),
                static_cast<long long>(mq->messages_reread));
  }
  return 0;
}
