#include <gtest/gtest.h>

#include <memory>

#include "cache/transform_cache.h"
#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/random.h"
#include "rewriter/canonical_query.h"
#include "rewriter/predicate_logic.h"
#include "rewriter/query_rewriter.h"
#include "sql/engine.h"
#include "sql/parser.h"
#include "transform/udfs.h"

namespace sqlink {
namespace {

// --- Predicate implication (§5.2 "logically stronger") ---

bool Implies(const std::string& stronger, const std::string& weaker) {
  auto s = ParseExpression(stronger);
  auto w = ParseExpression(weaker);
  EXPECT_TRUE(s.ok() && w.ok());
  return ConjunctImplies(**s, **w);
}

TEST(PredicateLogicTest, PaperExample) {
  // "a < 18 is logically stronger than a <= 20".
  EXPECT_TRUE(Implies("a < 18", "a <= 20"));
  EXPECT_FALSE(Implies("a <= 20", "a < 18"));
}

TEST(PredicateLogicTest, EqualityImpliesRanges) {
  EXPECT_TRUE(Implies("a = 5", "a <= 5"));
  EXPECT_TRUE(Implies("a = 5", "a >= 5"));
  EXPECT_TRUE(Implies("a = 5", "a < 6"));
  EXPECT_TRUE(Implies("a = 5", "a <> 6"));
  EXPECT_FALSE(Implies("a = 5", "a <> 5"));
  EXPECT_FALSE(Implies("a = 5", "a > 5"));
}

TEST(PredicateLogicTest, RangeLogic) {
  EXPECT_TRUE(Implies("a < 5", "a < 5"));
  EXPECT_TRUE(Implies("a < 5", "a <= 5"));
  EXPECT_FALSE(Implies("a <= 5", "a < 5"));
  EXPECT_TRUE(Implies("a > 10", "a > 5"));
  EXPECT_TRUE(Implies("a >= 10", "a > 9"));
  EXPECT_FALSE(Implies("a >= 10", "a > 10"));
  EXPECT_TRUE(Implies("a < 5", "a <> 7"));
  EXPECT_FALSE(Implies("a < 5", "a <> 3"));
}

TEST(PredicateLogicTest, DifferentColumnsNeverImply) {
  EXPECT_FALSE(Implies("a < 5", "b < 10"));
  EXPECT_FALSE(Implies("t.a < 5", "u.a < 10"));
}

TEST(PredicateLogicTest, StringEquality) {
  EXPECT_TRUE(Implies("country = 'USA'", "country = 'USA'"));
  EXPECT_FALSE(Implies("country = 'USA'", "country = 'CA'"));
  EXPECT_TRUE(Implies("country = 'USA'", "country <> 'CA'"));
}

TEST(PredicateLogicTest, FlippedOperandOrder) {
  EXPECT_TRUE(Implies("18 > a", "a <= 20"));  // 18 > a  ==  a < 18.
  auto c = ExtractConstraint(**ParseExpression("5 <= x"));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->op, ">=");
  EXPECT_EQ(c->column, "x");
}

TEST(PredicateLogicTest, NonConstraintsExtractNothing) {
  EXPECT_FALSE(ExtractConstraint(**ParseExpression("a = b")).has_value());
  EXPECT_FALSE(ExtractConstraint(**ParseExpression("a + 1 < 5")).has_value());
  EXPECT_FALSE(
      ExtractConstraint(**ParseExpression("a < 5 AND b < 3")).has_value());
}

TEST(PredicateLogicTest, StructuralEqualityFallback) {
  // Complex but identical conjuncts imply each other.
  EXPECT_TRUE(Implies("a + b < 5", "a + b < 5"));
  EXPECT_FALSE(Implies("a + b < 5", "a + b < 6"));  // Not a constraint.
}

// --- Engine-backed fixture with the paper's carts/users scenario ---

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("rewriter_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
    ASSERT_TRUE(RegisterTransformUdfs(engine_.get()).ok());

    auto users_schema = Schema::Make({{"userid", DataType::kInt64},
                                      {"age", DataType::kInt64},
                                      {"gender", DataType::kString},
                                      {"country", DataType::kString}});
    auto users = engine_->MakeTable("users", users_schema);
    Random rng(31);
    for (int64_t id = 0; id < 200; ++id) {
      users->AppendRow(
          static_cast<size_t>(id) % 4,
          Row{Value::Int64(id), Value::Int64(rng.UniformInt(18, 80)),
              Value::String(rng.Bernoulli(0.5) ? "F" : "M"),
              Value::String(rng.Bernoulli(0.7) ? "USA" : "CA")});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(users).ok());

    auto carts_schema = Schema::Make({{"cartid", DataType::kInt64},
                                      {"userid", DataType::kInt64},
                                      {"amount", DataType::kDouble},
                                      {"nitems", DataType::kInt64},
                                      {"year", DataType::kInt64},
                                      {"abandoned", DataType::kString}});
    auto carts = engine_->MakeTable("carts", carts_schema);
    for (int64_t id = 0; id < 1000; ++id) {
      carts->AppendRow(
          static_cast<size_t>(id) % 4,
          Row{Value::Int64(id), Value::Int64(rng.UniformInt(0, 199)),
              Value::Double(rng.NextDouble() * 400),
              Value::Int64(rng.UniformInt(1, 12)),
              Value::Int64(rng.UniformInt(2013, 2015)),
              Value::String(rng.Bernoulli(0.4) ? "Yes" : "No")});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(carts).ok());
  }

  /// The paper's Section 1 data-prep query.
  static std::string PrepQuery() {
    return "SELECT U.age, U.gender, C.amount, C.abandoned "
           "FROM carts C, users U "
           "WHERE C.userid = U.userid AND U.country = 'USA'";
  }

  static TransformRequest PaperRequest() {
    TransformRequest request;
    request.prep_sql = PrepQuery();
    request.recode_columns = {"gender", "abandoned"};
    request.codings["gender"] = CodingScheme::kDummy;
    return request;
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(RewriterTest, CanonicalizationNormalizesAliases) {
  auto a = ParseSelect(PrepQuery());
  auto b = ParseSelect(
      "SELECT X.age, X.gender, Y.amount, Y.abandoned FROM carts Y, users X "
      "WHERE Y.userid = X.userid AND X.country = 'USA'");
  ASSERT_TRUE(a.ok() && b.ok());
  auto ca = CanonicalizeQuery(*a, *engine_->catalog());
  auto cb = CanonicalizeQuery(*b, *engine_->catalog());
  ASSERT_TRUE(ca.ok()) << ca.status();
  ASSERT_TRUE(cb.ok()) << cb.status();
  EXPECT_TRUE(CanonicalQuery::SameTables(*ca, *cb));
  EXPECT_TRUE(CanonicalQuery::SameJoins(*ca, *cb));
  ASSERT_EQ(ca->predicates.size(), 1u);
  EXPECT_TRUE(ExprEquals(*ca->predicates[0], *cb->predicates[0]));
  EXPECT_EQ(ca->projections[0].CanonicalRef(), "users.age");
}

TEST_F(RewriterTest, CanonicalizationRejectsNonSpjQueries) {
  auto agg = ParseSelect("SELECT COUNT(*) FROM carts GROUP BY year");
  ASSERT_TRUE(agg.ok());
  EXPECT_FALSE(CanonicalizeQuery(*agg, *engine_->catalog()).ok());
  auto distinct = ParseSelect("SELECT DISTINCT gender FROM users");
  ASSERT_TRUE(distinct.ok());
  EXPECT_FALSE(CanonicalizeQuery(*distinct, *engine_->catalog()).ok());
}

TEST_F(RewriterTest, BuildTransformedSqlMatchesPaperShape) {
  QueryRewriter rewriter(engine_, nullptr);
  auto rewrite = rewriter.RewriteWithCache(PaperRequest());
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kComputed);
  // The rewritten SQL joins through the recode map and wraps dummy coding.
  EXPECT_NE(rewrite->transformed_sql.find("recodeval AS gender"),
            std::string::npos);
  EXPECT_NE(rewrite->transformed_sql.find("dummy_code"), std::string::npos);

  // Execute it: output schema has gender expanded to gender_F, gender_M.
  auto result = engine_->ExecuteSql(rewrite->transformed_sql);
  ASSERT_TRUE(result.ok()) << result.status();
  const Schema& schema = *(*result)->schema();
  EXPECT_GE(schema.FieldIndex("gender_F"), 0);
  EXPECT_GE(schema.FieldIndex("gender_M"), 0);
  EXPECT_GE(schema.FieldIndex("abandoned"), 0);
  EXPECT_EQ(schema.field(*schema.RequireField("abandoned")).type,
            DataType::kInt64);

  // Row count equals the raw prep query's.
  auto raw = engine_->ExecuteSql(PrepQuery());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*result)->TotalRows(), (*raw)->TotalRows());
}

TEST_F(RewriterTest, TransformedValuesAgreeWithMap) {
  QueryRewriter rewriter(engine_, nullptr);
  TransformRequest request;
  request.prep_sql = PrepQuery();
  request.recode_columns = {"abandoned"};
  auto rewrite = rewriter.RewriteWithCache(request);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  auto result = engine_->ExecuteSql(rewrite->transformed_sql);
  ASSERT_TRUE(result.ok()) << result.status();
  // 'No' < 'Yes' alphabetically -> No=1, Yes=2.
  EXPECT_EQ(*rewrite->recode_map.Code("abandoned", "No"), 1);
  EXPECT_EQ(*rewrite->recode_map.Code("abandoned", "Yes"), 2);
  for (const Row& row : (*result)->GatherRows()) {
    const int64_t code = row[3].int64_value();
    EXPECT_TRUE(code == 1 || code == 2);
  }
}

TEST_F(RewriterTest, RecodeMapCacheHitOnPaperSecondQuery) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  auto first = rewriter.RewriteWithCache(PaperRequest());
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->source, QueryRewriter::Source::kComputed);
  EXPECT_EQ(cache.misses(), 1);

  // The paper's §5.2 follow-up query: extra projected column nItems, an
  // extra predicate on a new field (year), same joins and predicates.
  TransformRequest second;
  second.prep_sql =
      "SELECT U.age, U.gender, C.amount, C.nItems, C.abandoned "
      "FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014";
  second.recode_columns = {"gender", "abandoned"};
  auto rewrite = rewriter.RewriteWithCache(second);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kRecodeMapCache);
  EXPECT_EQ(cache.map_hits(), 1);

  // Reused map must equal a freshly computed one.
  InSqlTransformer transformer(engine_);
  auto fresh =
      transformer.ComputeRecodeMap(second.prep_sql, {"gender", "abandoned"});
  ASSERT_TRUE(fresh.ok());
  // Cached map may be a superset; every fresh entry must agree.
  for (const std::string& column : fresh->Columns()) {
    auto labels = fresh->Labels(column);
    ASSERT_TRUE(labels.ok());
    for (const std::string& label : *labels) {
      EXPECT_EQ(*rewrite->recode_map.Code(column, label),
                *fresh->Code(column, label));
    }
  }
  // And executing the rewritten SQL works.
  auto result = engine_->ExecuteSql(rewrite->transformed_sql);
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST_F(RewriterTest, StrongerPredicateStillHitsMapCache) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  TransformRequest first;
  first.prep_sql =
      "SELECT U.gender, U.age FROM users U WHERE U.age <= 60";
  first.recode_columns = {"gender"};
  ASSERT_TRUE(rewriter.RewriteWithCache(first).ok());

  TransformRequest second;
  second.prep_sql =
      "SELECT U.gender, U.age FROM users U WHERE U.age < 40";
  second.recode_columns = {"gender"};
  auto rewrite = rewriter.RewriteWithCache(second);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kRecodeMapCache);
}

TEST_F(RewriterTest, WeakerPredicateMissesMapCache) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  TransformRequest first;
  first.prep_sql = "SELECT U.gender, U.age FROM users U WHERE U.age < 40";
  first.recode_columns = {"gender"};
  ASSERT_TRUE(rewriter.RewriteWithCache(first).ok());

  TransformRequest second;
  second.prep_sql = "SELECT U.gender, U.age FROM users U WHERE U.age <= 60";
  second.recode_columns = {"gender"};
  auto rewrite = rewriter.RewriteWithCache(second);
  ASSERT_TRUE(rewrite.ok());
  // A weaker predicate may surface unseen categories: must recompute.
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kComputed);
  EXPECT_EQ(cache.misses(), 2);
}

TEST_F(RewriterTest, DifferentJoinsMissCache) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  ASSERT_TRUE(rewriter.RewriteWithCache(PaperRequest()).ok());

  TransformRequest other;
  other.prep_sql =
      "SELECT U.gender FROM users U WHERE U.country = 'USA'";  // No join.
  other.recode_columns = {"gender"};
  auto rewrite = rewriter.RewriteWithCache(other);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kComputed);
}

TEST_F(RewriterTest, FullResultCacheHitOnPaperSubsetQuery) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  auto first = rewriter.RewriteWithCache(PaperRequest());
  ASSERT_TRUE(first.ok()) << first.status();
  // Materialize the transformed result and register it for §5.1 reuse.
  auto table =
      engine_->MaterializeSql(first->transformed_sql, "transformed_cache");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_TRUE(rewriter
                  .CacheFullResult(PaperRequest(), first->recode_map,
                                   "transformed_cache")
                  .ok());

  // The paper's §5.1 follow-up: subset projection plus a predicate on a
  // projected categorical field.
  TransformRequest second;
  second.prep_sql =
      "SELECT U.age, C.amount, C.abandoned FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'F'";
  second.recode_columns = {"abandoned"};
  auto rewrite = rewriter.RewriteWithCache(second);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kFullResultCache);
  EXPECT_NE(rewrite->transformed_sql.find("transformed_cache"),
            std::string::npos);
  // gender was dummy-coded in the cache; the predicate becomes gender_F = 1.
  EXPECT_NE(rewrite->transformed_sql.find("gender_F = 1"), std::string::npos)
      << rewrite->transformed_sql;

  // Correctness: rewritten result equals computing from scratch.
  auto from_cache = engine_->ExecuteSql(rewrite->transformed_sql);
  ASSERT_TRUE(from_cache.ok()) << from_cache.status();
  QueryRewriter cold(engine_, nullptr);
  auto recomputed = cold.RewriteWithCache(second);
  ASSERT_TRUE(recomputed.ok());
  auto direct = engine_->ExecuteSql(recomputed->transformed_sql);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*from_cache)->TotalRows(), (*direct)->TotalRows());
}

TEST_F(RewriterTest, FullCacheMissWhenProjectingUnCachedColumn) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  auto first = rewriter.RewriteWithCache(PaperRequest());
  ASSERT_TRUE(first.ok());
  auto table =
      engine_->MaterializeSql(first->transformed_sql, "transformed_cache2");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(rewriter
                  .CacheFullResult(PaperRequest(), first->recode_map,
                                   "transformed_cache2")
                  .ok());

  // nItems was not projected by the cached query (the paper notes this
  // follow-up cannot use the full cache).
  TransformRequest second;
  second.prep_sql =
      "SELECT U.age, U.gender, C.amount, C.nItems, C.abandoned "
      "FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014";
  second.recode_columns = {"gender", "abandoned"};
  auto rewrite = rewriter.RewriteWithCache(second);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_NE(rewrite->source, QueryRewriter::Source::kFullResultCache);
  // But it does hit the recode-map cache (§5.2), as the paper describes.
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kRecodeMapCache);
}

TEST_F(RewriterTest, FullCacheMissOnExtraPredicateOverUnprojectedField) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  auto first = rewriter.RewriteWithCache(PaperRequest());
  ASSERT_TRUE(first.ok());
  auto table =
      engine_->MaterializeSql(first->transformed_sql, "transformed_cache3");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(rewriter
                  .CacheFullResult(PaperRequest(), first->recode_map,
                                   "transformed_cache3")
                  .ok());
  TransformRequest second;
  // year is not projected by the cached query -> §5.1 condition 3 fails.
  second.prep_sql =
      "SELECT U.age, C.amount FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014";
  auto rewrite = rewriter.RewriteWithCache(second);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_NE(rewrite->source, QueryRewriter::Source::kFullResultCache);
}

TEST_F(RewriterTest, CacheMatchesAcrossDifferentAliases) {
  // §5 matching is alias-insensitive: the follow-up query renames both
  // tables and flips equality operand order, yet still hits the cache.
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  ASSERT_TRUE(rewriter.RewriteWithCache(PaperRequest()).ok());

  TransformRequest renamed;
  renamed.prep_sql =
      "SELECT B.age, B.gender, A.amount, A.abandoned "
      "FROM carts A, users B "
      "WHERE B.userid = A.userid AND B.country = 'USA'";
  renamed.recode_columns = {"gender", "abandoned"};
  renamed.codings["gender"] = CodingScheme::kDummy;
  auto rewrite = rewriter.RewriteWithCache(renamed);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kRecodeMapCache);
}

TEST_F(RewriterTest, PredicateOrderIrrelevantForMatching) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  TransformRequest first;
  first.prep_sql =
      "SELECT U.gender FROM users U WHERE U.age > 20 AND U.country = 'USA'";
  first.recode_columns = {"gender"};
  ASSERT_TRUE(rewriter.RewriteWithCache(first).ok());

  TransformRequest reordered;
  reordered.prep_sql =
      "SELECT U.gender FROM users U WHERE U.country = 'USA' AND U.age > 20";
  reordered.recode_columns = {"gender"};
  auto rewrite = rewriter.RewriteWithCache(reordered);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kRecodeMapCache);
}

TEST_F(RewriterTest, DifferentCodingSchemeStillReusesRecodeMap) {
  // §5.2 reuse is about the map, not the coding: asking for effect coding
  // after a dummy-coded run still skips the recoding pass.
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  ASSERT_TRUE(rewriter.RewriteWithCache(PaperRequest()).ok());

  TransformRequest effect = PaperRequest();
  effect.codings["gender"] = CodingScheme::kEffect;
  auto rewrite = rewriter.RewriteWithCache(effect);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  EXPECT_EQ(rewrite->source, QueryRewriter::Source::kRecodeMapCache);
  EXPECT_NE(rewrite->transformed_sql.find("effect_code"), std::string::npos);
  auto result = engine_->ExecuteSql(rewrite->transformed_sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE((*result)->schema()->FieldIndex("gender_F"), 0);
  EXPECT_EQ((*result)->schema()->FieldIndex("gender_M"), -1);
}

TEST_F(RewriterTest, FullCacheMissWhenCodingDiffers) {
  // §5.1 requires identical treatments: a cached dummy-coded result cannot
  // serve an effect-coding request (the stored columns differ).
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  auto first = rewriter.RewriteWithCache(PaperRequest());
  ASSERT_TRUE(first.ok());
  auto table =
      engine_->MaterializeSql(first->transformed_sql, "cache_coded");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      rewriter.CacheFullResult(PaperRequest(), first->recode_map, "cache_coded")
          .ok());

  TransformRequest effect = PaperRequest();
  effect.codings["gender"] = CodingScheme::kEffect;
  auto rewrite = rewriter.RewriteWithCache(effect);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_NE(rewrite->source, QueryRewriter::Source::kFullResultCache);
}

TEST_F(RewriterTest, CacheStatsAccumulate) {
  TransformCache cache;
  QueryRewriter rewriter(engine_, &cache);
  ASSERT_TRUE(rewriter.RewriteWithCache(PaperRequest()).ok());
  ASSERT_TRUE(rewriter.RewriteWithCache(PaperRequest()).ok());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.map_hits(), 1);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.map_hits(), 0);
}

}  // namespace
}  // namespace sqlink
