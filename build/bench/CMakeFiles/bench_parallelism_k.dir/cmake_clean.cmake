file(REMOVE_RECURSE
  "CMakeFiles/bench_parallelism_k.dir/bench_parallelism_k.cpp.o"
  "CMakeFiles/bench_parallelism_k.dir/bench_parallelism_k.cpp.o.d"
  "bench_parallelism_k"
  "bench_parallelism_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallelism_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
