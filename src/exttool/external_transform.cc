#include "exttool/external_transform.h"

#include <optional>
#include <set>

#include "common/status_macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "ml/text_input_format.h"
#include "table/csv.h"

namespace sqlink {

Result<ExternalTransformTool::Result_> ExternalTransformTool::Run(
    const std::string& input_path, SchemaPtr input_schema,
    const std::vector<std::string>& recode_columns,
    const std::map<std::string, CodingScheme>& codings,
    const std::string& output_path) {
  // Resolve columns.
  std::vector<int> recode_indices;
  for (const std::string& column : recode_columns) {
    ASSIGN_OR_RETURN(int index, input_schema->RequireField(column));
    if (input_schema->field(index).type != DataType::kString) {
      return Status::InvalidArgument("recode column is not categorical: " +
                                     column);
    }
    recode_indices.push_back(index);
  }
  for (const auto& [column, scheme] : codings) {
    (void)scheme;
    bool recoded = false;
    for (const std::string& name : recode_columns) {
      recoded = recoded || EqualsIgnoreCase(name, column);
    }
    if (!recoded) {
      return Status::InvalidArgument("coded column must be recoded: " + column);
    }
  }

  ml::JobContext context;
  context.cluster = cluster_;
  ml::TextFileInputFormat format(dfs_, input_path, input_schema);
  ASSIGN_OR_RETURN(std::vector<ml::InputSplitPtr> splits,
                   format.GetSplits(context));
  const size_t m = splits.size();

  // --- Pass 1: global distinct values per recoded column. ---
  std::vector<std::vector<std::set<std::string>>> local(m);
  std::vector<Status> statuses(m);
  ParallelFor(m, [&](size_t i) {
    auto run = [&]() -> Status {
      local[i].resize(recode_indices.size());
      ASSIGN_OR_RETURN(std::unique_ptr<ml::RecordReader> reader,
                       format.CreateReader(context, *splits[i],
                                           static_cast<int>(i)));
      Row row;
      for (;;) {
        ASSIGN_OR_RETURN(bool has, reader->Next(&row));
        if (!has) break;
        for (size_t c = 0; c < recode_indices.size(); ++c) {
          const Value& v = row[static_cast<size_t>(recode_indices[c])];
          if (!v.is_null()) local[i][c].insert(v.string_value());
        }
      }
      return Status::OK();
    };
    statuses[i] = run();
  });
  for (const Status& status : statuses) RETURN_IF_ERROR(status);

  RecodeMap map;
  for (size_t c = 0; c < recode_indices.size(); ++c) {
    std::set<std::string> merged;
    for (size_t i = 0; i < m; ++i) {
      merged.insert(local[i][c].begin(), local[i][c].end());
    }
    const std::string& column =
        input_schema->field(recode_indices[c]).name;
    int code = 0;
    for (const std::string& value : merged) {
      RETURN_IF_ERROR(map.Add(column, value, ++code));
    }
  }

  // Output schema: recoded columns become INT64; coded columns expand.
  std::vector<Field> out_fields;
  struct ColumnPlan {
    bool recode = false;
    std::optional<CodingScheme> scheme;
    std::vector<std::vector<double>> matrix;
  };
  std::vector<ColumnPlan> plans(static_cast<size_t>(input_schema->num_fields()));
  for (int i = 0; i < input_schema->num_fields(); ++i) {
    const Field& field = input_schema->field(i);
    ColumnPlan& plan = plans[static_cast<size_t>(i)];
    for (const std::string& column : recode_columns) {
      if (EqualsIgnoreCase(column, field.name)) plan.recode = true;
    }
    std::optional<CodingScheme> scheme;
    for (const auto& [column, s] : codings) {
      if (EqualsIgnoreCase(column, field.name)) scheme = s;
    }
    if (!plan.recode) {
      out_fields.push_back(field);
      continue;
    }
    if (!scheme.has_value()) {
      out_fields.push_back(Field{field.name, DataType::kInt64});
      continue;
    }
    plan.scheme = scheme;
    ASSIGN_OR_RETURN(std::vector<std::string> labels, map.Labels(field.name));
    ASSIGN_OR_RETURN(plan.matrix,
                     CodingMatrix(*scheme, static_cast<int>(labels.size())));
    CodedColumnSpec spec{field.name, static_cast<int>(labels.size()), labels};
    const DataType generated = *scheme == CodingScheme::kOrthogonal
                                   ? DataType::kDouble
                                   : DataType::kInt64;
    for (const std::string& name : CodedColumnNames(spec, *scheme)) {
      out_fields.push_back(Field{name, generated});
    }
  }
  SchemaPtr output_schema = Schema::Make(std::move(out_fields));

  // --- Pass 2: apply and write part files back to DFS. ---
  std::vector<uint64_t> row_counts(m, 0);
  ParallelFor(m, [&](size_t i) {
    auto run = [&]() -> Status {
      ASSIGN_OR_RETURN(std::unique_ptr<ml::RecordReader> reader,
                       format.CreateReader(context, *splits[i],
                                           static_cast<int>(i)));
      // Place the first replica on the worker's node, like an MR reducer.
      const int node =
          cluster_ != nullptr
              ? static_cast<int>(i) % cluster_->num_nodes()
              : -1;
      ASSIGN_OR_RETURN(
          std::unique_ptr<DfsWriter> writer,
          dfs_->Create(output_path + "/part-" + std::to_string(i), node));
      CsvCodec codec;
      std::string buffer;
      Row row;
      for (;;) {
        ASSIGN_OR_RETURN(bool has, reader->Next(&row));
        if (!has) break;
        Row out;
        for (size_t col = 0; col < row.size(); ++col) {
          const ColumnPlan& plan = plans[col];
          if (!plan.recode) {
            out.push_back(std::move(row[col]));
            continue;
          }
          if (row[col].is_null()) {
            return Status::InvalidArgument("NULL categorical value");
          }
          ASSIGN_OR_RETURN(
              int code, map.Code(input_schema->field(static_cast<int>(col)).name,
                                 row[col].string_value()));
          if (!plan.scheme.has_value()) {
            out.push_back(Value::Int64(code));
            continue;
          }
          for (double v : plan.matrix[static_cast<size_t>(code - 1)]) {
            out.push_back(*plan.scheme == CodingScheme::kOrthogonal
                              ? Value::Double(v)
                              : Value::Int64(static_cast<int64_t>(v)));
          }
        }
        codec.AppendRow(out, &buffer);
        ++row_counts[i];
        if (buffer.size() >= 1 << 20) {
          RETURN_IF_ERROR(writer->Append(buffer));
          buffer.clear();
        }
      }
      if (!buffer.empty()) RETURN_IF_ERROR(writer->Append(buffer));
      return writer->Close();
    };
    statuses[i] = run();
  });
  for (const Status& status : statuses) RETURN_IF_ERROR(status);

  Result_ result;
  result.recode_map = std::move(map);
  result.output_schema = std::move(output_schema);
  result.output_path = output_path;
  for (uint64_t count : row_counts) result.rows += count;
  return result;
}

}  // namespace sqlink
