#ifndef SQLINK_TABLE_CSV_H_
#define SQLINK_TABLE_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink {

/// Text (CSV-like) row codec — the "text format on HDFS" of the paper.
/// Fields are delimiter-separated; a field containing the delimiter, a double
/// quote, or a newline is wrapped in double quotes with internal quotes
/// doubled. NULL encodes as the empty unquoted field; the empty *string*
/// encodes as "" (two quotes).
class CsvCodec {
 public:
  explicit CsvCodec(char delimiter = ',') : delimiter_(delimiter) {}

  /// Renders a row as one line (no trailing newline).
  std::string FormatRow(const Row& row) const;

  /// Appends a row plus '\n' to the buffer; avoids per-row allocation in the
  /// write path.
  void AppendRow(const Row& row, std::string* out) const;

  /// Parses one line into typed values according to the schema.
  Result<Row> ParseRow(std::string_view line, const Schema& schema) const;

  char delimiter() const { return delimiter_; }

 private:
  void AppendField(std::string_view text, bool quote_empty,
                   std::string* out) const;

  char delimiter_;
};

}  // namespace sqlink

#endif  // SQLINK_TABLE_CSV_H_
