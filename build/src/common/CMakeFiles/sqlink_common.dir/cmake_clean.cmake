file(REMOVE_RECURSE
  "CMakeFiles/sqlink_common.dir/coding.cc.o"
  "CMakeFiles/sqlink_common.dir/coding.cc.o.d"
  "CMakeFiles/sqlink_common.dir/fs_util.cc.o"
  "CMakeFiles/sqlink_common.dir/fs_util.cc.o.d"
  "CMakeFiles/sqlink_common.dir/logging.cc.o"
  "CMakeFiles/sqlink_common.dir/logging.cc.o.d"
  "CMakeFiles/sqlink_common.dir/metrics.cc.o"
  "CMakeFiles/sqlink_common.dir/metrics.cc.o.d"
  "CMakeFiles/sqlink_common.dir/random.cc.o"
  "CMakeFiles/sqlink_common.dir/random.cc.o.d"
  "CMakeFiles/sqlink_common.dir/status.cc.o"
  "CMakeFiles/sqlink_common.dir/status.cc.o.d"
  "CMakeFiles/sqlink_common.dir/string_util.cc.o"
  "CMakeFiles/sqlink_common.dir/string_util.cc.o.d"
  "CMakeFiles/sqlink_common.dir/thread_pool.cc.o"
  "CMakeFiles/sqlink_common.dir/thread_pool.cc.o.d"
  "libsqlink_common.a"
  "libsqlink_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
