#include "ml/model_io.h"

#include "common/coding.h"
#include "common/fs_util.h"
#include "common/status_macros.h"

namespace sqlink::ml {

namespace {

constexpr char kMagic[] = "SQML";

enum class ModelType : uint8_t {
  kLinear = 1,
  kNaiveBayes = 2,
  kDecisionTree = 3,
  kKMeans = 4,
  kScaler = 5,
};

void EncodeVector(const DenseVector& values, std::string* out) {
  PutVarint64(out, values.size());
  for (double v : values) PutDouble(out, v);
}

Result<DenseVector> DecodeVector(Decoder* decoder) {
  ASSIGN_OR_RETURN(uint64_t count, decoder->GetVarint64());
  DenseVector values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(double v, decoder->GetDouble());
    values.push_back(v);
  }
  return values;
}

Status SaveFile(ModelType type, const std::string& payload,
                const std::string& path) {
  std::string file(kMagic, 4);
  file.push_back(static_cast<char>(type));
  file += payload;
  return WriteFileAtomic(path, file);
}

Result<std::string> LoadFile(ModelType expected, const std::string& path) {
  ASSIGN_OR_RETURN(std::string file, ReadFileToString(path));
  if (file.size() < 5 || file.compare(0, 4, kMagic, 4) != 0) {
    return Status::DataLoss("not a sqlink model file: " + path);
  }
  if (file[4] != static_cast<char>(expected)) {
    return Status::InvalidArgument("model type mismatch in " + path);
  }
  return file.substr(5);
}

}  // namespace

Status SaveLinearModel(const LinearModel& model, const std::string& path) {
  std::string payload;
  EncodeVector(model.weights, &payload);
  PutDouble(&payload, model.intercept);
  return SaveFile(ModelType::kLinear, payload, path);
}

Result<LinearModel> LoadLinearModel(const std::string& path) {
  ASSIGN_OR_RETURN(std::string payload, LoadFile(ModelType::kLinear, path));
  Decoder decoder(payload);
  LinearModel model;
  ASSIGN_OR_RETURN(model.weights, DecodeVector(&decoder));
  ASSIGN_OR_RETURN(model.intercept, decoder.GetDouble());
  return model;
}

Status SaveNaiveBayesModel(const NaiveBayesModel& model,
                           const std::string& path) {
  std::string payload;
  model.Encode(&payload);
  return SaveFile(ModelType::kNaiveBayes, payload, path);
}

Result<NaiveBayesModel> LoadNaiveBayesModel(const std::string& path) {
  ASSIGN_OR_RETURN(std::string payload,
                   LoadFile(ModelType::kNaiveBayes, path));
  Decoder decoder(payload);
  return NaiveBayesModel::Decode(&decoder);
}

Status SaveDecisionTreeModel(const DecisionTreeModel& model,
                             const std::string& path) {
  std::string payload;
  model.Encode(&payload);
  return SaveFile(ModelType::kDecisionTree, payload, path);
}

Result<DecisionTreeModel> LoadDecisionTreeModel(const std::string& path) {
  ASSIGN_OR_RETURN(std::string payload,
                   LoadFile(ModelType::kDecisionTree, path));
  Decoder decoder(payload);
  return DecisionTreeModel::Decode(&decoder);
}

Status SaveKMeansModel(const KMeansModel& model, const std::string& path) {
  std::string payload;
  PutVarint64(&payload, model.centers.size());
  for (const DenseVector& center : model.centers) {
    EncodeVector(center, &payload);
  }
  PutDouble(&payload, model.cost);
  return SaveFile(ModelType::kKMeans, payload, path);
}

Result<KMeansModel> LoadKMeansModel(const std::string& path) {
  ASSIGN_OR_RETURN(std::string payload, LoadFile(ModelType::kKMeans, path));
  Decoder decoder(payload);
  KMeansModel model;
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(DenseVector center, DecodeVector(&decoder));
    model.centers.push_back(std::move(center));
  }
  ASSIGN_OR_RETURN(model.cost, decoder.GetDouble());
  return model;
}

Status SaveStandardScaler(const StandardScaler& scaler,
                          const std::string& path) {
  std::string payload;
  EncodeVector(scaler.means(), &payload);
  EncodeVector(scaler.stddevs(), &payload);
  return SaveFile(ModelType::kScaler, payload, path);
}

Result<StandardScaler> LoadStandardScaler(const std::string& path) {
  ASSIGN_OR_RETURN(std::string payload, LoadFile(ModelType::kScaler, path));
  Decoder decoder(payload);
  ASSIGN_OR_RETURN(DenseVector means, DecodeVector(&decoder));
  ASSIGN_OR_RETURN(DenseVector stddevs, DecodeVector(&decoder));
  return StandardScaler::FromMoments(std::move(means), std::move(stddevs));
}

}  // namespace sqlink::ml
