// Row-vs-vectorized differential harness (ISSUE 6 satellite a).
//
// Every query — the committed golden corpus plus hundreds of
// generator-driven random queries — is executed twice through the same
// engine, once with the row-at-a-time operators and once with the
// vectorized ColumnBatch pipeline, and the two results must be identical
// as unordered multisets. The generator is seeded, so a failure reproduces
// by rerunning the test; the failing SQL text is printed with the diff.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/random.h"
#include "common/runtime_flags.h"
#include "common/string_util.h"
#include "sql/engine.h"
#include "sql_corpus.h"

namespace sqlink {
namespace {

/// Outcome of one engine run: either a canonical result or an error text.
struct RunOutcome {
  bool ok = false;
  std::string canonical;  ///< Sorted pipe-joined rows when ok.
  std::string error;      ///< Status message when !ok.
};

class SqlDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("sql_diff");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
    RegisterCorpusTables(engine_.get());
  }

  void TearDown() override { SetVectorizedSqlEnabledForTest(-1); }

  RunOutcome RunMode(const std::string& sql, int vectorized) {
    SetVectorizedSqlEnabledForTest(vectorized);
    RunOutcome outcome;
    auto result = engine_->ExecuteSql(sql);
    if (!result.ok()) {
      outcome.error = result.status().ToString();
      return outcome;
    }
    outcome.ok = true;
    outcome.canonical = CanonicalResult((*result)->GatherRows());
    return outcome;
  }

  /// Runs `sql` through both engines and asserts identical outcomes.
  /// Returns the row-engine outcome for further checks.
  RunOutcome ExpectEnginesAgree(const std::string& sql) {
    RunOutcome row = RunMode(sql, 0);
    RunOutcome vec = RunMode(sql, 1);
    EXPECT_EQ(row.ok, vec.ok)
        << sql << "\nrow error: " << row.error << "\nvec error: " << vec.error;
    if (row.ok && vec.ok) {
      EXPECT_EQ(row.canonical, vec.canonical) << sql;
    }
    return row;
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(SqlDifferentialTest, GoldenCorpusAgreesAcrossEngines) {
  auto corpus = LoadQueryCorpus();
  ASSERT_GE(corpus.size(), 14u) << "query corpus missing from " SQLINK_QUERY_DIR;
  const bool update = EnvInt64("SQLINK_UPDATE_GOLDENS", 0) != 0;
  for (const CorpusQuery& query : corpus) {
    SCOPED_TRACE(query.name);
    RunOutcome row = ExpectEnginesAgree(query.sql);
    ASSERT_TRUE(row.ok) << query.sql << " -> " << row.error;
    if (update) {
      ASSERT_TRUE(WriteFileAtomic(query.expected_path, row.canonical).ok());
      continue;
    }
    auto golden = ReadFileToString(query.expected_path);
    ASSERT_TRUE(golden.ok())
        << query.expected_path
        << " missing; regenerate with SQLINK_UPDATE_GOLDENS=1";
    EXPECT_EQ(row.canonical, *golden) << query.sql;
  }
}

// ---------------------------------------------------------------------------
// Generator-driven differential fuzzing.
// ---------------------------------------------------------------------------

struct CorpusColumn {
  const char* name;
  DataType type;
};

constexpr CorpusColumn kEventColumns[] = {{"k", DataType::kInt64},
                                          {"v", DataType::kDouble},
                                          {"s", DataType::kString},
                                          {"flag", DataType::kBool}};

const char* const kEventTables[] = {"e0", "e1", "e1023", "e1024", "e1025"};

std::string GenLiteral(Random& rng, DataType type) {
  switch (type) {
    case DataType::kInt64:
      return std::to_string(rng.UniformInt(-2, 33));
    case DataType::kDouble:
      return std::to_string(rng.UniformInt(-500, 500)) + ".5";
    case DataType::kString: {
      static const char* const kStrings[] = {"alpha", "beta", "gamma",
                                             "delta", "",     "x"};
      return std::string("'") + kStrings[rng.Uniform(6)] + "'";
    }
    case DataType::kBool:
      return rng.Bernoulli(0.5) ? "TRUE" : "FALSE";
    default:
      return "0";
  }
}

/// A single type-compatible predicate over `prefix`-qualified event columns.
std::string GenComparison(Random& rng, const std::string& prefix) {
  const CorpusColumn& col = kEventColumns[rng.Uniform(4)];
  std::string ref = prefix + col.name;
  switch (rng.Uniform(8)) {
    case 0:
      return ref + " IS NULL";
    case 1:
      return ref + " IS NOT NULL";
    default: {
      const char* ops_numeric[] = {"=", "<>", "<", "<=", ">", ">="};
      const char* op = (col.type == DataType::kInt64 ||
                        col.type == DataType::kDouble)
                           ? ops_numeric[rng.Uniform(6)]
                           : (rng.Bernoulli(0.5) ? "=" : "<>");
      return ref + " " + op + " " + GenLiteral(rng, col.type);
    }
  }
}

std::string GenPredicate(Random& rng, const std::string& prefix, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.45)) return GenComparison(rng, prefix);
  switch (rng.Uniform(3)) {
    case 0:
      return "(" + GenPredicate(rng, prefix, depth - 1) + " AND " +
             GenPredicate(rng, prefix, depth - 1) + ")";
    case 1:
      return "(" + GenPredicate(rng, prefix, depth - 1) + " OR " +
             GenPredicate(rng, prefix, depth - 1) + ")";
    default:
      return "NOT (" + GenPredicate(rng, prefix, depth - 1) + ")";
  }
}

std::string GenProjection(Random& rng, const std::string& prefix) {
  switch (rng.Uniform(5)) {
    case 0:
      return prefix + "k + " + std::to_string(rng.UniformInt(-3, 3));
    case 1:
      return prefix + "v * " + std::to_string(rng.UniformInt(1, 4));
    case 2:
      return prefix + "s";
    case 3:
      return prefix + "flag";
    default:
      return prefix + std::string(kEventColumns[rng.Uniform(4)].name);
  }
}

std::string GenQuery(Random& rng) {
  const std::string table = kEventTables[rng.Uniform(5)];
  switch (rng.Uniform(10)) {
    case 0:
    case 1:
    case 2: {  // Single-table filter + projection.
      std::string sql = "SELECT ";
      const size_t ncols = 1 + rng.Uniform(3);
      for (size_t i = 0; i < ncols; ++i) {
        if (i) sql += ", ";
        sql += GenProjection(rng, "");
      }
      sql += " FROM " + table;
      if (rng.Bernoulli(0.8)) sql += " WHERE " + GenPredicate(rng, "", 2);
      return sql;
    }
    case 3:
    case 4: {  // DISTINCT over low-cardinality projections.
      std::string sql = "SELECT DISTINCT k";
      if (rng.Bernoulli(0.5)) sql += ", flag";
      if (rng.Bernoulli(0.3)) sql += ", s";
      sql += " FROM " + table;
      if (rng.Bernoulli(0.6)) sql += " WHERE " + GenPredicate(rng, "", 1);
      return sql;
    }
    case 5:
    case 6:
    case 7: {  // Join with dims, optionally DISTINCT and filtered.
      std::string sql = "SELECT ";
      if (rng.Bernoulli(0.4)) sql += "DISTINCT ";
      sql += GenProjection(rng, "e.") + ", d.label FROM " + table +
             " e JOIN dims d ON e.k = d.k";
      if (rng.Bernoulli(0.7)) sql += " WHERE " + GenPredicate(rng, "e.", 1);
      return sql;
    }
    case 8: {  // Self join on k.
      return "SELECT a.k, b.v FROM " + table + " a, " + table +
             " b WHERE a.k = b.k AND " + GenPredicate(rng, "a.", 1);
    }
    default: {  // Aggregation.
      std::string sql = "SELECT k, COUNT(*), ";
      sql += rng.Bernoulli(0.5) ? "SUM(v)" : "MAX(v)";
      sql += " FROM " + table;
      if (rng.Bernoulli(0.5)) sql += " WHERE " + GenPredicate(rng, "", 1);
      sql += " GROUP BY k";
      return sql;
    }
  }
}

TEST_F(SqlDifferentialTest, GeneratedQueriesAgreeAcrossEngines) {
  // >= 200 generated queries (ISSUE 6); bump via SQLINK_DIFF_QUERIES.
  const int64_t total = EnvInt64("SQLINK_DIFF_QUERIES", 220);
  int executed = 0;
  for (const uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Random rng(seed);
    for (int64_t i = 0; i < total / 4 + 1; ++i) {
      const std::string sql = GenQuery(rng);
      SCOPED_TRACE("seed=" + std::to_string(seed) + " i=" + std::to_string(i) +
                   "\n" + sql);
      ExpectEnginesAgree(sql);
      ++executed;
      if (HasFatalFailure()) return;
    }
  }
  EXPECT_GE(executed, 200);
}

// Join-heavy differential sweep pinning the costed join paths against each
// other: the same queries under forced hash and forced sort-merge strategy,
// in both engine modes, must all agree.
TEST_F(SqlDifferentialTest, JoinStrategiesAgreeAcrossEngines) {
  Random rng(99);
  for (int i = 0; i < 30; ++i) {
    const std::string table = kEventTables[rng.Uniform(5)];
    std::string sql = "SELECT e.k, e.s, d.label FROM " + table +
                      " e JOIN dims d ON e.k = d.k";
    if (rng.Bernoulli(0.6)) sql += " WHERE " + GenPredicate(rng, "e.", 1);
    SCOPED_TRACE(sql);

    engine_->set_join_strategy(JoinStrategy::kHash);
    RunOutcome hash = RunMode(sql, 1);
    engine_->set_join_strategy(JoinStrategy::kSortMerge);
    RunOutcome merge_vec = RunMode(sql, 1);
    RunOutcome merge_row = RunMode(sql, 0);
    engine_->set_join_strategy(JoinStrategy::kAuto);

    ASSERT_TRUE(hash.ok) << hash.error;
    ASSERT_TRUE(merge_vec.ok) << merge_vec.error;
    ASSERT_TRUE(merge_row.ok) << merge_row.error;
    EXPECT_EQ(hash.canonical, merge_vec.canonical);
    EXPECT_EQ(hash.canonical, merge_row.canonical);
  }
}

}  // namespace
}  // namespace sqlink
