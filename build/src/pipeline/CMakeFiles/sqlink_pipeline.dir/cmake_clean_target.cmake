file(REMOVE_RECURSE
  "libsqlink_pipeline.a"
)
