#ifndef SQLINK_SQL_CATALOG_H_
#define SQLINK_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace sqlink {

/// Thread-safe table registry (the engine's "NameNode for tables").
/// Names are case-insensitive.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status RegisterTable(TablePtr table);
  /// Registers or replaces.
  void PutTable(TablePtr table);
  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> ListTables() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TablePtr> tables_;  // Lower-case key.
};

}  // namespace sqlink

#endif  // SQLINK_SQL_CATALOG_H_
