file(REMOVE_RECURSE
  "libsqlink_transform.a"
)
