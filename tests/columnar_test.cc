#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/runtime_flags.h"
#include "ml/dataset.h"
#include "sql/engine.h"
#include "stream/streaming_transfer.h"
#include "stream/wire.h"
#include "table/column_batch.h"
#include "table/record_batch.h"
#include "table/row_codec.h"
#include "transform/coding.h"
#include "transform/kernels.h"
#include "transform/recode_map.h"

namespace sqlink {
namespace {

// Value::operator== compares doubles with ==, under which NaN != NaN. Edge
// and property tests compare doubles by bit pattern instead so NaN survives
// every round trip.
bool BitEqual(double a, double b) {
  uint64_t ua = 0;
  uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

bool SameValue(const Value& a, const Value& b) {
  if (a.is_double() && b.is_double()) {
    return BitEqual(a.double_value(), b.double_value());
  }
  return a == b;
}

bool SameRows(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) return false;
    for (size_t c = 0; c < a[r].size(); ++c) {
      if (!SameValue(a[r][c], b[r][c])) return false;
    }
  }
  return true;
}

SchemaPtr EdgeSchema() {
  return Schema::Make({{"flag", DataType::kBool},
                       {"count", DataType::kInt64},
                       {"ratio", DataType::kDouble},
                       {"name", DataType::kString}});
}

std::vector<Row> EdgeRows() {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return {
      {Value::Bool(true), Value::Int64(0), Value::Double(0.0),
       Value::String("")},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null()},
      {Value::Bool(false), Value::Int64(std::numeric_limits<int64_t>::min()),
       Value::Double(kNan), Value::String("repeated")},
      {Value::Bool(true), Value::Int64(std::numeric_limits<int64_t>::max()),
       Value::Double(kInf), Value::String("repeated")},
      {Value::Null(), Value::Int64(-1), Value::Double(-kInf),
       Value::String(std::string(1000, 'x'))},
      {Value::Bool(false), Value::Null(), Value::Double(-0.0),
       Value::String("")},
  };
}

// --- ColumnBatch <-> rows / RecordBatch -------------------------------------

TEST(ColumnBatchTest, RoundTripsEdgeValues) {
  auto batch = ColumnBatch::FromRows(EdgeSchema(), EdgeRows());
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->num_rows(), 6u);
  EXPECT_TRUE(SameRows(batch->ToRows(), EdgeRows()));
  // NULL string rows must not pollute the dictionary; "" and "repeated" are
  // stored once each.
  EXPECT_EQ(batch->column(3).dict.size(), 3);
}

TEST(ColumnBatchTest, RecordBatchRoundTripKeepsEdgeValues) {
  auto batch = ColumnBatch::FromRows(EdgeSchema(), EdgeRows());
  ASSERT_TRUE(batch.ok()) << batch.status();
  RecordBatch record = batch->ToRecordBatch();
  auto back = ColumnBatch::FromRecordBatch(record);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(SameRows(back->ToRows(), EdgeRows()));
}

TEST(ColumnBatchTest, HighCardinalityDictionaryRoundTrips) {
  auto schema = Schema::Make({{"key", DataType::kString}});
  std::vector<Row> rows;
  for (int i = 0; i < 10000; ++i) {
    rows.push_back({Value::String("key-" + std::to_string(i))});
  }
  // Repeats after the distinct run must reuse existing dictionary ids.
  for (int i = 0; i < 500; ++i) {
    rows.push_back({Value::String("key-" + std::to_string(i * 7 % 10000))});
  }
  auto batch = ColumnBatch::FromRows(schema, rows);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->column(0).dict.size(), 10000);
  EXPECT_TRUE(SameRows(batch->ToRows(), rows));
}

TEST(ColumnBatchTest, AppendBatchRemapsDictionaryCodes) {
  auto schema = Schema::Make({{"name", DataType::kString}});
  auto first = ColumnBatch::FromRows(
      schema, {{Value::String("a")}, {Value::String("b")}});
  auto second = ColumnBatch::FromRows(
      schema, {{Value::String("b")}, {Value::String("c")}, {Value::Null()}});
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(first->AppendBatch(*second).ok());
  const std::vector<Row> got = first->ToRows();
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[2][0], Value::String("b"));
  EXPECT_EQ(got[3][0], Value::String("c"));
  EXPECT_TRUE(got[4][0].is_null());
  // "b" was remapped onto the existing entry, not duplicated.
  EXPECT_EQ(first->column(0).dict.size(), 3);
}

TEST(ColumnBatchTest, TruncateClearsTrailingNullBits) {
  auto schema = Schema::Make({{"v", DataType::kInt64}});
  ColumnBatch batch(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(batch.AppendRow({Value::Null()}).ok());
  }
  batch.Truncate(3);
  EXPECT_EQ(batch.num_rows(), 3u);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(batch.AppendRow({Value::Int64(i)}).ok());
  }
  const std::vector<Row> got = batch.ToRows();
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(got[static_cast<size_t>(i)][0].is_null());
  for (int i = 3; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)][0], Value::Int64(i - 3));
  }
}

TEST(ColumnBatchTest, SliceCopiesTail) {
  auto batch = ColumnBatch::FromRows(EdgeSchema(), EdgeRows());
  ASSERT_TRUE(batch.ok());
  ColumnBatch tail = batch->Slice(4);
  EXPECT_EQ(tail.num_rows(), 2u);
  const std::vector<Row> all = EdgeRows();
  const std::vector<Row> expected(all.begin() + 4, all.end());
  EXPECT_TRUE(SameRows(tail.ToRows(), expected));
  EXPECT_TRUE(batch->Slice(99).empty());
}

TEST(ColumnBatchTest, AppendRowRejectsMismatches) {
  auto schema = Schema::Make({{"v", DataType::kInt64}});
  ColumnBatch batch(schema);
  EXPECT_TRUE(batch.AppendRow({Value::String("no")}).IsInvalidArgument());
  EXPECT_TRUE(
      batch.AppendRow({Value::Int64(1), Value::Int64(2)}).IsInvalidArgument());
}

// --- Columnar wire encoding --------------------------------------------------

TEST(ColumnarWireTest, EncodeDecodeRoundTripsEdgeValues) {
  auto schema = EdgeSchema();
  auto batch = ColumnBatch::FromRows(schema, EdgeRows());
  ASSERT_TRUE(batch.ok());

  ColumnarChannelEncoder encoder(schema);
  std::string payload;
  ASSERT_TRUE(encoder.EncodeBatch(*batch, &payload).ok());

  ColumnarChannelDecoder decoder;
  ColumnBatch decoded;
  ASSERT_TRUE(decoder.DecodeBatch(payload, schema, &decoded).ok());
  EXPECT_TRUE(SameRows(decoded.ToRows(), EdgeRows()));
}

TEST(ColumnarWireTest, DictionaryDeltasAccumulateAcrossFrames) {
  auto schema = Schema::Make({{"name", DataType::kString}});
  ColumnarChannelEncoder encoder(schema);

  auto first = ColumnBatch::FromRows(
      schema, {{Value::String("a")}, {Value::String("b")}});
  auto second = ColumnBatch::FromRows(
      schema, {{Value::String("b")}, {Value::String("c")}});
  ASSERT_TRUE(first.ok() && second.ok());

  std::string payload1;
  std::string payload2;
  ASSERT_TRUE(encoder.EncodeBatch(*first, &payload1).ok());
  ASSERT_TRUE(encoder.EncodeBatch(*second, &payload2).ok());
  // The second frame's delta carries only "c"; it rides on the channel dict.
  EXPECT_LT(payload2.size(), payload1.size() + 2);

  ColumnarChannelDecoder decoder;
  ColumnBatch out;
  ASSERT_TRUE(decoder.DecodeBatch(payload1, schema, &out).ok());
  EXPECT_TRUE(SameRows(out.ToRows(), first->ToRows()));
  ASSERT_TRUE(decoder.DecodeBatch(payload2, schema, &out).ok());
  EXPECT_TRUE(SameRows(out.ToRows(), second->ToRows()));
}

TEST(ColumnarWireTest, SnapshotMakesReplayedDeltasIdempotent) {
  auto schema = Schema::Make({{"name", DataType::kString}});
  ColumnarChannelEncoder encoder(schema);
  auto first = ColumnBatch::FromRows(
      schema, {{Value::String("a")}, {Value::String("b")}});
  auto second = ColumnBatch::FromRows(
      schema, {{Value::String("c")}, {Value::String("a")}});
  ASSERT_TRUE(first.ok() && second.ok());
  std::string payload1;
  std::string payload2;
  ASSERT_TRUE(encoder.EncodeBatch(*first, &payload1).ok());
  ASSERT_TRUE(encoder.EncodeBatch(*second, &payload2).ok());

  // A replacement reader reconnects: it gets the full snapshot, then the
  // sink replays BOTH frames. Their deltas overlap the snapshot entirely;
  // decode must treat the overlap as a no-op.
  ColumnarChannelDecoder fresh;
  ASSERT_TRUE(fresh.ApplySnapshot(encoder.SnapshotDicts(), schema).ok());
  ColumnBatch out;
  ASSERT_TRUE(fresh.DecodeBatch(payload1, schema, &out).ok());
  EXPECT_TRUE(SameRows(out.ToRows(), first->ToRows()));
  ASSERT_TRUE(fresh.DecodeBatch(payload2, schema, &out).ok());
  EXPECT_TRUE(SameRows(out.ToRows(), second->ToRows()));
  // Replaying the same frame twice (duplicate delivery) is also harmless.
  ASSERT_TRUE(fresh.DecodeBatch(payload2, schema, &out).ok());
  EXPECT_TRUE(SameRows(out.ToRows(), second->ToRows()));
}

TEST(ColumnarWireTest, DecodeErrorPaths) {
  auto schema = Schema::Make({{"name", DataType::kString}});
  ColumnarChannelDecoder decoder;
  ColumnBatch out;
  // No schema yet (reader got data before kSchema).
  EXPECT_TRUE(
      decoder.DecodeBatch("", nullptr, &out).IsFailedPrecondition());
  EXPECT_TRUE(decoder.ApplySnapshot("", nullptr).IsFailedPrecondition());

  // A delta that skips ahead of the channel dictionary (frame loss) is data
  // loss, not silent misdecoding.
  ColumnarChannelEncoder encoder(schema);
  auto first = ColumnBatch::FromRows(schema, {{Value::String("a")}});
  auto second = ColumnBatch::FromRows(schema, {{Value::String("b")}});
  ASSERT_TRUE(first.ok() && second.ok());
  std::string payload1;
  std::string payload2;
  ASSERT_TRUE(encoder.EncodeBatch(*first, &payload1).ok());
  ASSERT_TRUE(encoder.EncodeBatch(*second, &payload2).ok());
  EXPECT_TRUE(decoder.DecodeBatch(payload2, schema, &out).IsDataLoss());
}

TEST(ColumnarWireTest, RowAndColumnarEncodingsDecodeIdentically) {
  // Property: any row batch decodes to the same values whether it crossed
  // the wire as a kData payload (RowCodec) or a kColData payload.
  auto schema = Schema::Make({{"flag", DataType::kBool},
                              {"count", DataType::kInt64},
                              {"ratio", DataType::kDouble},
                              {"name", DataType::kString}});
  Random rng(117);
  ColumnarChannelEncoder encoder(schema);
  ColumnarChannelDecoder decoder;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Row> rows;
    const size_t n = 1 + rng.NextUint64() % 200;
    for (size_t i = 0; i < n; ++i) {
      Row row;
      row.push_back(rng.NextUint64() % 8 == 0
                        ? Value::Null()
                        : Value::Bool(rng.NextUint64() % 2 == 0));
      row.push_back(rng.NextUint64() % 8 == 0
                        ? Value::Null()
                        : Value::Int64(static_cast<int64_t>(rng.NextUint64())));
      const uint64_t pick = rng.NextUint64() % 16;
      if (pick == 0) {
        row.push_back(Value::Null());
      } else if (pick == 1) {
        row.push_back(
            Value::Double(std::numeric_limits<double>::quiet_NaN()));
      } else if (pick == 2) {
        row.push_back(Value::Double(std::numeric_limits<double>::infinity()));
      } else {
        row.push_back(Value::Double(rng.NextDouble() * 1e6 - 5e5));
      }
      row.push_back(rng.NextUint64() % 8 == 0
                        ? Value::Null()
                        : Value::String("s" + std::to_string(rng.NextUint64() %
                                                             64)));
      rows.push_back(std::move(row));
    }

    const std::string row_payload = RowCodec::EncodeRows(rows);
    auto via_rows = RowCodec::DecodeRows(row_payload);
    ASSERT_TRUE(via_rows.ok()) << via_rows.status();

    auto batch = ColumnBatch::FromRows(schema, rows);
    ASSERT_TRUE(batch.ok()) << batch.status();
    std::string col_payload;
    ASSERT_TRUE(encoder.EncodeBatch(*batch, &col_payload).ok());
    ColumnBatch decoded;
    ASSERT_TRUE(decoder.DecodeBatch(col_payload, schema, &decoded).ok());

    EXPECT_TRUE(SameRows(*via_rows, rows));
    EXPECT_TRUE(SameRows(decoded.ToRows(), rows)) << "trial " << trial;
  }
}

TEST(FrameBufferPoolTest, ReusesBuffersAndCountsHitsAndMisses) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  Counter* pooled = metrics.GetCounter("stream.wire.frames_pooled");
  Counter* miss = metrics.GetCounter("stream.wire.pool_miss");

  FrameBufferPool pool;
  const int64_t miss_before = miss->value();
  std::string buffer = pool.Acquire();  // Empty pool: allocates.
  EXPECT_GT(miss->value(), miss_before);

  buffer.assign(4096, 'z');
  const char* const data = buffer.data();
  pool.Release(std::move(buffer));

  const int64_t pooled_before = pooled->value();
  std::string reused = pool.Acquire();
  EXPECT_GT(pooled->value(), pooled_before);
  EXPECT_TRUE(reused.empty());  // Cleared, capacity kept.
  EXPECT_GE(reused.capacity(), 4096u);
  EXPECT_EQ(reused.data(), data);
}

// --- Vectorized transform kernels -------------------------------------------

TEST(KernelTest, RecodeKernelMatchesMapLookups) {
  RecodeMap map;
  ASSERT_TRUE(map.Add("city", "nyc", 1).ok());
  ASSERT_TRUE(map.Add("city", "sfo", 2).ok());
  ASSERT_TRUE(map.Add("city", "ber", 3).ok());

  auto schema = Schema::Make({{"city", DataType::kString}});
  std::vector<Row> rows = {{Value::String("sfo")}, {Value::String("nyc")},
                           {Value::Null()},        {Value::String("ber")},
                           {Value::String("sfo")}};
  auto batch = ColumnBatch::FromRows(schema, rows);
  ASSERT_TRUE(batch.ok());

  const RecodeMap::ColumnDict* dict = map.FindColumn("city");
  ASSERT_NE(dict, nullptr);
  Column out;
  ASSERT_TRUE(RecodeColumnKernel(batch->column(0), batch->num_rows(), "city",
                                 *dict, &out)
                  .ok());
  EXPECT_EQ(out.ints, (std::vector<int64_t>{2, 1, 0, 3, 2}));
  EXPECT_TRUE(out.IsNull(2));
  EXPECT_FALSE(out.IsNull(0));
  // Per-row lookup latency landed in the histogram.
  EXPECT_GT(MetricsRegistry::Global()
                .GetHistogram("transform.recode_lookup_ns")
                ->count(),
            0);

  // A value outside the map is the row path's NotFound, not a bad code.
  auto bad = ColumnBatch::FromRows(schema, {{Value::String("lax")}});
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(
      RecodeColumnKernel(bad->column(0), 1, "city", *dict, &out).IsNotFound());
}

TEST(KernelTest, CodingKernelProducesContrastColumns) {
  auto matrix = CodingMatrix(CodingScheme::kDummy, 3);
  ASSERT_TRUE(matrix.ok());

  auto schema = Schema::Make({{"code", DataType::kInt64}});
  auto batch = ColumnBatch::FromRows(
      schema, {{Value::Int64(1)}, {Value::Int64(3)}, {Value::Int64(2)}});
  ASSERT_TRUE(batch.ok());

  std::vector<Column> out;
  ASSERT_TRUE(ApplyCodingKernel(batch->column(0), batch->num_rows(), 3,
                                *matrix, DataType::kInt64, &out)
                  .ok());
  ASSERT_EQ(out.size(), matrix->front().size());
  for (size_t j = 0; j < out.size(); ++j) {
    for (size_t r = 0; r < 3; ++r) {
      const auto level = static_cast<size_t>(batch->column(0).ints[r]);
      EXPECT_EQ(out[j].ints[r], static_cast<int64_t>((*matrix)[level - 1][j]))
          << "row " << r << " col " << j;
    }
  }

  // A level outside [1, cardinality] is OutOfRange, matching the row path.
  auto bad = ColumnBatch::FromRows(schema, {{Value::Int64(4)}});
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(ApplyCodingKernel(bad->column(0), 1, 3, *matrix,
                                DataType::kInt64, &out)
                  .IsOutOfRange());
}

// --- Columnar feature extraction --------------------------------------------

TEST(DatasetTest, FromColumnsMatchesFromRows) {
  auto schema = Schema::Make({{"label", DataType::kInt64},
                              {"f1", DataType::kDouble},
                              {"f2", DataType::kBool},
                              {"f3", DataType::kInt64}});
  Random rng(9);
  ml::RowDataset rows;
  rows.schema = schema;
  ml::ColumnDataset columns;
  columns.schema = schema;
  for (int p = 0; p < 3; ++p) {
    std::vector<Row> partition;
    for (int i = 0; i < 50; ++i) {
      partition.push_back({Value::Int64(i % 2),
                           rng.NextUint64() % 10 == 0
                               ? Value::Null()
                               : Value::Double(rng.NextDouble()),
                           Value::Bool(rng.NextUint64() % 2 == 0),
                           Value::Int64(static_cast<int64_t>(
                               rng.NextUint64() % 1000))});
    }
    auto batch = ColumnBatch::FromRows(schema, partition);
    ASSERT_TRUE(batch.ok());
    columns.partitions.push_back(std::move(*batch));
    rows.partitions.push_back(std::move(partition));
  }

  auto from_rows = ml::Dataset::FromRowsAutoFeatures(rows, "label");
  auto from_columns = ml::Dataset::FromColumnsAutoFeatures(columns, "label");
  ASSERT_TRUE(from_rows.ok()) << from_rows.status();
  ASSERT_TRUE(from_columns.ok()) << from_columns.status();
  EXPECT_EQ(from_rows->dimension(), from_columns->dimension());
  EXPECT_EQ(from_rows->partitions(), from_columns->partitions());
}

TEST(DatasetTest, FromColumnsRejectsCategoricalFeatures) {
  auto schema = Schema::Make(
      {{"label", DataType::kInt64}, {"city", DataType::kString}});
  ml::ColumnDataset columns;
  columns.schema = schema;
  auto batch = ColumnBatch::FromRows(
      schema, {{Value::Int64(1), Value::String("nyc")}});
  ASSERT_TRUE(batch.ok());
  columns.partitions.push_back(std::move(*batch));
  auto dataset = ml::Dataset::FromColumnsAutoFeatures(columns, "label");
  EXPECT_TRUE(dataset.status().IsInvalidArgument());
}

// --- End-to-end transfer under both modes -----------------------------------

class ColumnarTransferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("columnar_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);

    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"feature", DataType::kDouble},
                                {"label", DataType::kInt64}});
    auto table = engine_->MakeTable("points", schema);
    Random rng(31);
    for (int64_t i = 0; i < 1000; ++i) {
      table->AppendRow(
          static_cast<size_t>(i) % 4,
          Row{Value::Int64(i), Value::Double(rng.NextDouble()),
              Value::Int64(i % 2)});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(table).ok());
  }

  void TearDown() override { SetColumnarEnabledForTest(-1); }

  void ExpectAllIds(const ml::ColumnDataset& dataset) {
    std::set<int64_t> ids;
    for (const ColumnBatch& partition : dataset.partitions) {
      for (size_t r = 0; r < partition.num_rows(); ++r) {
        EXPECT_TRUE(ids.insert(partition.ValueAt(r, 0).int64_value()).second);
      }
    }
    EXPECT_EQ(ids.size(), 1000u);
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(ColumnarTransferTest, ColumnarTransferDeliversEveryRowOnce) {
  SetColumnarEnabledForTest(1);
  Counter* pooled =
      MetricsRegistry::Global().GetCounter("stream.wire.frames_pooled");
  const int64_t pooled_before = pooled->value();
  auto result =
      StreamingTransfer::RunToColumns(engine_.get(), "SELECT * FROM points");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  EXPECT_EQ(result->rows_sent, 1000);
  EXPECT_EQ(result->stats.num_splits, 4);
  EXPECT_EQ(result->dataset.schema->ToString(),
            "id:INT64, feature:DOUBLE, label:INT64");
  ExpectAllIds(result->dataset);
  // The steady-state sender recycled frame buffers through the pool.
  EXPECT_GT(pooled->value(), pooled_before);
}

TEST_F(ColumnarTransferTest, RowModeTransferStillDeliversColumns) {
  // SQLINK_COLUMNAR=off: the wire carries kData row frames and the reader
  // falls back to per-row appends, but the columnar dataset shape holds.
  SetColumnarEnabledForTest(0);
  auto result =
      StreamingTransfer::RunToColumns(engine_.get(), "SELECT * FROM points");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  ExpectAllIds(result->dataset);
}

TEST_F(ColumnarTransferTest, RowIngestOverColumnarWireMatches) {
  // The classic row-Dataset entry point must keep working when the wire is
  // columnar: frames decode into batches, rows are emitted on demand.
  SetColumnarEnabledForTest(1);
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  std::set<int64_t> ids;
  for (const auto& partition : result->dataset.partitions) {
    for (const Row& row : partition) {
      EXPECT_TRUE(ids.insert(row[0].int64_value()).second);
    }
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST_F(ColumnarTransferTest, BothModesFeedIdenticalTrainingData) {
  SetColumnarEnabledForTest(1);
  auto columnar =
      StreamingTransfer::RunToColumns(engine_.get(), "SELECT * FROM points");
  ASSERT_TRUE(columnar.ok()) << columnar.status();
  SetColumnarEnabledForTest(0);
  auto row = StreamingTransfer::Run(engine_.get(), "SELECT * FROM points");
  ASSERT_TRUE(row.ok()) << row.status();

  auto from_columns =
      ml::Dataset::FromColumnsAutoFeatures(columnar->dataset, "label");
  auto from_rows = ml::Dataset::FromRowsAutoFeatures(row->dataset, "label");
  ASSERT_TRUE(from_columns.ok()) << from_columns.status();
  ASSERT_TRUE(from_rows.ok()) << from_rows.status();

  // Partition order is deterministic (split i = partition i), so the two
  // ingests must agree point for point.
  EXPECT_EQ(from_columns->partitions(), from_rows->partitions());
}

}  // namespace
}  // namespace sqlink
