#include "stream/stream_sink_udf.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/blocking_queue.h"
#include "common/coding.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry_policy.h"
#include "common/status_macros.h"
#include "common/trace.h"
#include "stream/spill_queue.h"
#include "stream/wire.h"
#include "table/row_codec.h"

namespace sqlink {

namespace {

/// Encodes batches of rows into kData frame payloads:
/// varint row count + concatenated encoded rows.
class FrameBatcher {
 public:
  void Add(const Row& row) {
    ++count_;
    RowCodec::Encode(row, &body_);
  }

  bool empty() const { return count_ == 0; }
  size_t bytes() const { return body_.size(); }

  std::string Flush() {
    std::string payload;
    PutVarint64(&payload, count_);
    payload += body_;
    count_ = 0;
    body_.clear();
    return payload;
  }

 private:
  uint64_t count_ = 0;
  std::string body_;
};

/// Waits for the receiver's final kAck: a transfer only counts as complete
/// once the ML worker confirms it consumed everything. Without this, a
/// sender could tear down while the receiver still fails, leaving no
/// endpoint for the §6 reconnect.
Status AwaitAck(TcpSocket* socket) {
  ASSIGN_OR_RETURN(Frame ack, RecvFrame(socket));
  if (ack.type != FrameType::kAck) {
    return Status::NetworkError("receiver did not acknowledge transfer");
  }
  return Status::OK();
}

/// Serves one already-encoded frame sequence (schema + data + end + ack) to
/// a socket.
Status ServeFrames(TcpSocket* socket, const Schema& schema,
                   const std::vector<std::string>& frames, uint64_t rows) {
  std::string schema_payload;
  EncodeSchema(schema, &schema_payload);
  RETURN_IF_ERROR(SendFrame(socket, FrameType::kSchema, schema_payload));
  for (const std::string& frame : frames) {
    RETURN_IF_ERROR(SendFrame(socket, FrameType::kData, frame));
  }
  std::string end_payload;
  PutVarint64(&end_payload, rows);
  RETURN_IF_ERROR(SendFrame(socket, FrameType::kEnd, end_payload));
  return AwaitAck(socket);
}

}  // namespace

Result<StreamSinkOptions> StreamSinkOptions::FromArgs(
    const std::vector<Value>& args, size_t first) {
  StreamSinkOptions options;
  if (args.size() > first && !args[first].is_null()) {
    if (!args[first].is_int64() || args[first].int64_value() <= 0) {
      return Status::InvalidArgument("buffer size must be a positive integer");
    }
    options.send_buffer_bytes = static_cast<size_t>(args[first].int64_value());
  }
  if (args.size() > first + 1) {
    if (!args[first + 1].is_int64()) {
      return Status::InvalidArgument("spill flag must be 0 or 1");
    }
    options.spill_enabled = args[first + 1].int64_value() != 0;
  }
  if (args.size() > first + 2) {
    if (!args[first + 2].is_int64()) {
      return Status::InvalidArgument("resilient flag must be 0 or 1");
    }
    options.resilient = args[first + 2].int64_value() != 0;
  }
  if (args.size() > first + 3) {
    if (!args[first + 3].is_int64() || args[first + 3].int64_value() <= 0) {
      return Status::InvalidArgument("reconnect timeout must be positive");
    }
    options.reconnect_timeout_ms =
        static_cast<int>(args[first + 3].int64_value());
  }
  return options;
}

SchemaPtr SqlStreamSinkUdf::SummarySchema() {
  return Schema::Make({{"worker", DataType::kInt64},
                       {"rows_sent", DataType::kInt64},
                       {"bytes_sent", DataType::kInt64},
                       {"spilled_frames", DataType::kInt64}});
}

Result<SchemaPtr> SqlStreamSinkUdf::Bind(const SchemaPtr& input_schema,
                                         const std::vector<Value>& args) {
  if (input_schema == nullptr) {
    return Status::InvalidArgument("sql_stream_sink needs an input relation");
  }
  if (args.size() < 3 || !args[0].is_string() || !args[1].is_int64() ||
      !args[2].is_string()) {
    return Status::InvalidArgument(
        "sql_stream_sink(query, host, port, command[, buffer, spill, "
        "resilient])");
  }
  coordinator_host_ = args[0].string_value();
  coordinator_port_ = static_cast<int>(args[1].int64_value());
  command_ = args[2].string_value();
  ASSIGN_OR_RETURN(options_, StreamSinkOptions::FromArgs(args, 3));
  input_schema_ = input_schema;
  return SummarySchema();
}

Status SqlStreamSinkUdf::ProcessPartition(const TableUdfContext& context,
                                          RowIterator* input,
                                          RowSink* output) {
  // Per-partition root of the SQL side of the trace. Every frame this
  // worker sends (registration, schema, data) carries a descendant of this
  // span, so the coordinator and the ML reader join the same trace.
  TraceSpan partition_span("sink.partition");
  partition_span.AddAttribute("worker", context.worker_id);
  const TraceContext partition_ctx = partition_span.context();

  // --- Step 1: open the data port and register with the coordinator. ---
  ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(0));
  const std::string my_host =
      context.cluster != nullptr ? context.cluster->HostName(context.worker_id)
                                 : "localhost";

  RegisterSqlMessage registration;
  registration.worker_id = context.worker_id;
  registration.num_workers = context.num_workers;
  registration.host = my_host;
  registration.port = listener.port();
  registration.command = command_;
  registration.schema = input_schema_;
  int k = 1;
  {
    TraceSpan register_span("sink.register");
    // Registration is idempotent on the coordinator, so transient failures
    // (dropped control connections, injected faults) are retried with
    // backoff rather than restarting the whole SQL task.
    RetryPolicy::Options retry_options;
    retry_options.deadline_ms = options_.reconnect_timeout_ms;
    retry_options.seed = static_cast<uint64_t>(context.worker_id);
    RetryPolicy retry(retry_options);
    Result<int> splits_per_worker = retry.Run([&]() -> Result<int> {
      if (SQLINK_FAILPOINT("stream.sink.register") != FailpointOutcome::kNone) {
        return Status::NetworkError("failpoint: injected registration error");
      }
      ASSIGN_OR_RETURN(TcpSocket control,
                       TcpConnect(coordinator_host_, coordinator_port_));
      RETURN_IF_ERROR(SendFrame(&control, FrameType::kRegisterSql,
                                registration.Encode()));
      ASSIGN_OR_RETURN(Frame ack, RecvFrame(&control));
      if (ack.type != FrameType::kAck) {
        return Status::NetworkError("coordinator rejected registration: " +
                                    ack.payload);
      }
      Decoder decoder(ack.payload);
      ASSIGN_OR_RETURN(uint64_t splits, decoder.GetVarint64());
      return static_cast<int>(splits);
    });
    if (!splits_per_worker.ok()) return splits_per_worker.status();
    k = *splits_per_worker;
  }

  // --- Step 7: a router thread accepts data connections and hands each to
  // its slot by HELLO split id (slot = split_id mod k within this worker's
  // group). Reconnects (§6 restarts) arrive the same way. ---
  struct Inbound {
    std::shared_ptr<TcpSocket> socket;
    bool restart = false;
  };
  std::vector<std::unique_ptr<BlockingQueue<Inbound>>> inboxes;
  for (int j = 0; j < k; ++j) {
    inboxes.push_back(std::make_unique<BlockingQueue<Inbound>>(4));
  }
  std::atomic<bool> router_stop{false};
  std::thread router([&] {
    while (!router_stop.load()) {
      auto socket = listener.Accept();
      if (!socket.ok()) return;  // Listener closed.
      auto shared = std::make_shared<TcpSocket>(std::move(*socket));
      auto hello_frame = RecvFrame(shared.get());
      if (!hello_frame.ok() || hello_frame->type != FrameType::kHello) {
        continue;
      }
      auto hello = HelloMessage::Decode(hello_frame->payload);
      if (!hello.ok()) continue;
      const int slot = hello->split_id % k;
      if (slot < 0 || slot >= k) continue;
      inboxes[static_cast<size_t>(slot)]->Push(
          Inbound{std::move(shared), hello->restart});
    }
  });
  // Always unwind the router on exit.
  struct RouterGuard {
    TcpListener* listener;
    std::atomic<bool>* stop;
    std::thread* router;
    std::vector<std::unique_ptr<BlockingQueue<Inbound>>>* inboxes;
    ~RouterGuard() {
      stop->store(true);
      listener->Close();
      if (router->joinable()) router->join();
      for (auto& inbox : *inboxes) inbox->Close();
    }
  } router_guard{&listener, &router_stop, &router, &inboxes};

  // Waits for a data connection on `inbox`, pacing the poll with a backoff
  // policy so the total wait across reconnect attempts is deadline-capped
  // rather than one fixed-length block per attempt. Leaves `out` empty when
  // the inbox closes (shutdown).
  auto wait_for_inbound = [](BlockingQueue<Inbound>* inbox,
                             RetryPolicy* policy,
                             std::optional<Inbound>* out) -> Status {
    for (;;) {
      const auto slice = policy->NextDelay();
      if (!slice.has_value()) {
        return Status::Unavailable("timed out waiting for ML worker");
      }
      bool timed_out = false;
      *out = inbox->PopFor(*slice, &timed_out);
      if (!timed_out) return Status::OK();
    }
  };
  RetryPolicy::Options inbound_wait_options;
  inbound_wait_options.deadline_ms = options_.reconnect_timeout_ms;
  inbound_wait_options.jitter = 0.0;

  const std::string scratch_dir =
      context.cluster != nullptr
          ? context.cluster->NodeLocalDir(context.worker_id)
          : "/tmp";
  int64_t rows_sent = 0;
  int64_t bytes_sent = 0;
  int64_t spilled_frames = 0;

  if (!options_.resilient) {
    // --- Pipelined mode (step 8): round-robin rows into per-target send
    // buffers while sender threads drain them onto the sockets. ---
    std::vector<std::unique_ptr<SpillingByteQueue>> queues;
    for (int j = 0; j < k; ++j) {
      SpillingByteQueue::Options queue_options;
      queue_options.memory_capacity_bytes = options_.send_buffer_bytes;
      queue_options.spill_enabled = options_.spill_enabled;
      queue_options.spill_path = scratch_dir + "/stream_spill_w" +
                                 std::to_string(context.worker_id) + "_t" +
                                 std::to_string(j);
      queues.push_back(std::make_unique<SpillingByteQueue>(queue_options));
    }

    std::vector<std::thread> senders;
    std::vector<Status> sender_status(static_cast<size_t>(k));
    std::vector<uint64_t> sender_rows(static_cast<size_t>(k), 0);
    for (int j = 0; j < k; ++j) {
      senders.emplace_back([&, j] {
        // The sender runs on its own thread, so it parents to the partition
        // span explicitly; frames it sends inherit this span's context.
        TraceSpan send_span("sink.send", partition_ctx);
        send_span.AddAttribute("target", j);
        auto run = [&]() -> Status {
          // Bounded wait: if the ML job died before dialing in, surface an
          // error instead of blocking the SQL pipeline forever.
          RetryPolicy wait_policy(inbound_wait_options);
          std::optional<Inbound> conn;
          RETURN_IF_ERROR(wait_for_inbound(inboxes[static_cast<size_t>(j)].get(),
                                           &wait_policy, &conn));
          if (!conn.has_value()) {
            return Status::Cancelled("no ML worker connected");
          }
          TcpSocket* socket = conn->socket.get();
          std::string schema_payload;
          EncodeSchema(*input_schema_, &schema_payload);
          RETURN_IF_ERROR(
              SendFrame(socket, FrameType::kSchema, schema_payload));
          for (;;) {
            ASSIGN_OR_RETURN(std::optional<std::string> frame,
                             queues[static_cast<size_t>(j)]->Pop());
            if (!frame.has_value()) break;
            RETURN_IF_ERROR(SendFrame(socket, FrameType::kData, *frame));
          }
          std::string end_payload;
          PutVarint64(&end_payload, sender_rows[static_cast<size_t>(j)]);
          RETURN_IF_ERROR(SendFrame(socket, FrameType::kEnd, end_payload));
          return AwaitAck(socket);
        };
        sender_status[static_cast<size_t>(j)] = run();
        if (!sender_status[static_cast<size_t>(j)].ok()) {
          send_span.SetError();
          // Unblock the producer (§6: without resilience the whole
          // pipeline restarts, so fail fast).
          queues[static_cast<size_t>(j)]->Cancel();
        }
        send_span.AddAttribute(
            "rows", static_cast<int64_t>(sender_rows[static_cast<size_t>(j)]));
      });
    }

    std::vector<FrameBatcher> batchers(static_cast<size_t>(k));
    Status produce_status;
    Row row;
    size_t next_target = 0;
    for (;;) {
      auto has = input->Next(&row);
      if (!has.ok()) {
        produce_status = has.status();
        break;
      }
      if (!*has) break;
      FrameBatcher& batch = batchers[next_target];
      batch.Add(row);
      ++sender_rows[next_target];
      ++rows_sent;
      if (batch.bytes() >= options_.send_buffer_bytes) {
        std::string frame = batch.Flush();
        bytes_sent += static_cast<int64_t>(frame.size());
        produce_status =
            queues[next_target]->Push(std::move(frame));
        if (!produce_status.ok()) break;
      }
      next_target = (next_target + 1) % static_cast<size_t>(k);
    }
    if (produce_status.ok()) {
      for (size_t j = 0; j < batchers.size(); ++j) {
        if (batchers[j].empty()) continue;
        std::string frame = batchers[j].Flush();
        bytes_sent += static_cast<int64_t>(frame.size());
        produce_status = queues[j]->Push(std::move(frame));
        if (!produce_status.ok()) break;
      }
    }
    for (auto& queue : queues) {
      if (produce_status.ok()) {
        queue->CloseProducer();
      } else {
        queue->Cancel();
      }
    }
    for (std::thread& sender : senders) sender.join();
    for (auto& queue : queues) spilled_frames += queue->spilled_frames();
    RETURN_IF_ERROR(produce_status);
    for (const Status& status : sender_status) {
      RETURN_IF_ERROR(status);
    }
  } else {
    // --- Resilient mode (§6): persist each target's frames to a retained
    // node-local log first, then serve; a reconnecting ML worker replays
    // deterministically from the log. ---
    std::vector<std::vector<std::string>> logs(static_cast<size_t>(k));
    std::vector<uint64_t> log_rows(static_cast<size_t>(k), 0);
    std::vector<FrameBatcher> batchers(static_cast<size_t>(k));
    Row row;
    size_t next_target = 0;
    for (;;) {
      ASSIGN_OR_RETURN(bool has, input->Next(&row));
      if (!has) break;
      FrameBatcher& batch = batchers[next_target];
      batch.Add(row);
      ++log_rows[next_target];
      ++rows_sent;
      if (batch.bytes() >= options_.send_buffer_bytes) {
        logs[next_target].push_back(batch.Flush());
      }
      next_target = (next_target + 1) % static_cast<size_t>(k);
    }
    for (size_t j = 0; j < batchers.size(); ++j) {
      if (!batchers[j].empty()) logs[j].push_back(batchers[j].Flush());
    }
    // Persist the retained logs to node-local disk (the durability §6
    // requires to survive an ML-side restart).
    for (size_t j = 0; j < logs.size(); ++j) {
      std::string file;
      for (const std::string& frame : logs[j]) {
        PutFixed32(&file, static_cast<uint32_t>(frame.size()));
        file += frame;
      }
      RETURN_IF_ERROR(WriteFileAtomic(
          scratch_dir + "/retained_w" + std::to_string(context.worker_id) +
              "_t" + std::to_string(j),
          file));
    }

    std::vector<std::thread> senders;
    std::vector<Status> sender_status(static_cast<size_t>(k));
    std::vector<int64_t> sender_bytes(static_cast<size_t>(k), 0);
    for (int j = 0; j < k; ++j) {
      senders.emplace_back([&, j] {
        TraceSpan send_span("sink.send", partition_ctx);
        send_span.AddAttribute("target", j);
        auto serve_once = [&](TcpSocket* socket) -> Status {
          for (const std::string& frame : logs[static_cast<size_t>(j)]) {
            sender_bytes[static_cast<size_t>(j)] +=
                static_cast<int64_t>(frame.size());
          }
          return ServeFrames(socket, *input_schema_,
                             logs[static_cast<size_t>(j)],
                             log_rows[static_cast<size_t>(j)]);
        };
        Status status = Status::Cancelled("no ML worker connected");
        // Serve until a transfer completes; each reconnect replays fully.
        // The shared policy caps the *total* time spent awaiting
        // (re)connections, so a dead ML job becomes an error, not a hang.
        RetryPolicy wait_policy(inbound_wait_options);
        for (;;) {
          std::optional<Inbound> conn;
          const Status wait = wait_for_inbound(
              inboxes[static_cast<size_t>(j)].get(), &wait_policy, &conn);
          if (!wait.ok()) {
            status = wait;
            break;
          }
          if (!conn.has_value()) break;  // Shut down.
          status = serve_once(conn->socket.get());
          if (status.ok()) break;
          LOG_WARNING() << "stream sink worker " << context.worker_id
                        << " target " << j
                        << " transfer failed, awaiting reconnect: " << status;
        }
        if (!status.ok()) send_span.SetError();
        sender_status[static_cast<size_t>(j)] = status;
      });
    }
    for (std::thread& sender : senders) sender.join();
    for (int64_t b : sender_bytes) bytes_sent += b;
    for (const Status& status : sender_status) {
      RETURN_IF_ERROR(status);
    }
  }

  static Counter* const rows_counter =
      MetricsRegistry::Global().GetCounter("stream.sink.rows_sent");
  static Counter* const bytes_counter =
      MetricsRegistry::Global().GetCounter("stream.sink.bytes_sent");
  rows_counter->Add(rows_sent);
  bytes_counter->Add(bytes_sent);
  partition_span.AddAttribute("rows_sent", rows_sent);
  partition_span.AddAttribute("bytes_sent", bytes_sent);
  partition_span.AddAttribute("spilled_frames", spilled_frames);
  return output->Push(Row{Value::Int64(context.worker_id),
                          Value::Int64(rows_sent), Value::Int64(bytes_sent),
                          Value::Int64(spilled_frames)});
}

Status RegisterStreamSinkUdf(SqlEngine* engine) {
  if (engine->table_udfs()->Contains("sql_stream_sink")) return Status::OK();
  return engine->table_udfs()->Register(
      "sql_stream_sink", [] { return std::make_shared<SqlStreamSinkUdf>(); });
}

}  // namespace sqlink
