# Empty dependencies file for sqlink_table.
# This may be replaced when dependencies are built.
