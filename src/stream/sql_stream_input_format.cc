#include "stream/sql_stream_input_format.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry_policy.h"
#include "common/runtime_flags.h"
#include "common/status_macros.h"
#include "common/trace.h"
#include "net/conn_pool.h"
#include "net/mux.h"
#include "stream/heartbeat.h"
#include "stream/socket.h"
#include "table/column_batch.h"
#include "table/row_codec.h"

namespace sqlink {

namespace {

RetryPolicy::Options ReconnectBackoffOptions(int split_id) {
  RetryPolicy::Options options;
  options.initial_delay_ms = 5;
  options.max_delay_ms = 200;
  options.seed = static_cast<uint64_t>(split_id);
  return options;
}

/// Receives one split's row stream from its SQL worker, with optional §6
/// recovery (reconnect + sequence-numbered replay + dedupe), liveness
/// heartbeats, and fault injection.
///
/// Exactly-once apply protocol: every kData frame carries a monotonic
/// sequence number. The reader acknowledges frame N (cumulative kDataAck)
/// only after every row of N has been handed to the ML job, drops frames
/// with seq <= last applied as duplicates, and treats a sequence gap as a
/// transport failure. On reconnect it offers its last applied sequence in
/// HELLO; the sink replays exactly the unseen suffix.
class StreamRecordReader final : public ml::RecordReader {
 public:
  StreamRecordReader(std::string coordinator_host, int coordinator_port,
                     StreamSplitInfo split, StreamReaderOptions options,
                     MetricsRegistry* metrics)
      : coordinator_host_(std::move(coordinator_host)),
        coordinator_port_(coordinator_port),
        split_(std::move(split)),
        // Precomputed so the per-row failpoint probe costs one atomic load
        // (the macro skips the name expression when nothing is armed).
        row_failpoint_name_("stream.reader.row.split" +
                            std::to_string(split_.split_id)),
        kill_failpoint_name_("stream.reader.kill.split" +
                             std::to_string(split_.split_id)),
        options_(options),
        metrics_(metrics),
        bytes_received_(metrics != nullptr
                            ? metrics->GetCounter("stream.bytes_received")
                            : nullptr),
        rows_delivered_(metrics != nullptr
                            ? metrics->GetCounter("stream.reader.rows_delivered")
                            : nullptr),
        frames_deduped_(
            MetricsRegistry::Global().GetCounter("transfer.frames_deduped")),
        reconnect_backoff_(ReconnectBackoffOptions(split_.split_id)) {
    if (options_.heartbeat_ms > 0) {
      HeartbeatSender::Options beat;
      beat.coordinator_host = coordinator_host_;
      beat.coordinator_port = coordinator_port_;
      beat.interval_ms = options_.heartbeat_ms;
      beat.role = HeartbeatMessage::kReader;
      beat.id = split_.split_id;
      beat.epoch = split_.epoch;
      beat.failpoint_name = "stream.reader.heartbeat.split" +
                            std::to_string(split_.split_id);
      heartbeat_ = std::make_unique<HeartbeatSender>(std::move(beat));
    }
  }

  ~StreamRecordReader() override {
    CloseStreamSpan(/*error=*/!done_);
    CloseChannel(done_ ? Status::OK()
                       : Status::Cancelled("reader destroyed mid-split"));
    if (heartbeat_ != nullptr) {
      // A reader that dies without completing releases its lease for
      // immediate reassignment instead of waiting out the TTL.
      heartbeat_->Stop(done_ ? HeartbeatMessage::kCompleted
                             : HeartbeatMessage::kFailed);
    }
  }

  Status Open() override {
    if (heartbeat_ != nullptr) heartbeat_->Start();
    if (connected_ || done_) return Status::OK();
    for (;;) {
      const Status status = Connect(/*restart=*/ever_connected_);
      if (status.ok()) return Status::OK();
      RETURN_IF_ERROR(HandleFailure(status));
    }
  }

  uint64_t resume_row_count() const override { return resume_rows_; }

  Result<bool> Next(Row* out) override {
    for (;;) {
      if (done_) return false;
      if (heartbeat_ != nullptr && heartbeat_->revoked()) {
        // Fenced or aborted: stop applying *now* — a replacement reader may
        // be about to resume this partition.
        CloseChannel(heartbeat_->status());
        connected_ = false;
        return heartbeat_->status();
      }
      if (!connected_) {
        RETURN_IF_ERROR(Open());
        continue;
      }
      auto row = NextFromConnection(out);
      if (row.ok()) {
        if (!*row) {
          done_ = true;
          CloseStreamSpan(/*error=*/false);
          return false;
        }
        ++delivered_;
        if (rows_delivered_ != nullptr) rows_delivered_->Increment();
        RETURN_IF_ERROR(ProbeDeliveryFailpoints());
        return true;
      }
      RETURN_IF_ERROR(HandleFailure(row.status()));
    }
  }

  /// Whole-batch delivery is worthwhile only when the sink streams columnar
  /// frames (same process-wide knob on both sides); with row frames the
  /// conversion would just move the boxing cost around.
  bool SupportsBatches() const override { return ColumnarEnabled(); }

  Result<bool> NextBatch(ColumnBatch* out) override {
    for (;;) {
      if (done_) return false;
      if (heartbeat_ != nullptr && heartbeat_->revoked()) {
        CloseChannel(heartbeat_->status());
        connected_ = false;
        return heartbeat_->status();
      }
      if (!connected_) {
        RETURN_IF_ERROR(Open());
        continue;
      }
      auto batch = NextBatchFromConnection(out);
      if (batch.ok()) {
        if (!*batch) {
          done_ = true;
          CloseStreamSpan(/*error=*/false);
          return false;
        }
        delivered_ += out->num_rows();
        if (rows_delivered_ != nullptr) {
          rows_delivered_->Add(static_cast<int64_t>(out->num_rows()));
        }
        RETURN_IF_ERROR(ProbeDeliveryFailpoints());
        return true;
      }
      RETURN_IF_ERROR(HandleFailure(batch.status()));
    }
  }

 private:
  /// Fault injection after a delivery. "row": drop the connection and
  /// recover locally. "kill": the reader dies mid-split — no local recovery;
  /// its split must be reassigned to a survivor.
  Status ProbeDeliveryFailpoints() {
    if (SQLINK_FAILPOINT(kill_failpoint_name_) != FailpointOutcome::kNone) {
      CloseChannel(Status::Unavailable("failpoint: reader killed mid-split"));
      connected_ = false;
      if (heartbeat_ != nullptr) {
        heartbeat_->Stop(HeartbeatMessage::kFailed);
      }
      return Status::Unavailable("failpoint: reader killed mid-split");
    }
    if (SQLINK_FAILPOINT(row_failpoint_name_) != FailpointOutcome::kNone) {
      CloseChannel(Status::NetworkError("injected connection failure"));
      connected_ = false;
      RETURN_IF_ERROR(
          HandleFailure(Status::NetworkError("injected connection failure")));
    }
    return Status::OK();
  }

  /// Resolves the SQL endpoint (via the coordinator on reconnects) and
  /// performs the HELLO / RESUME / SCHEMA handshake.
  Status Connect(bool restart) {
    if (SQLINK_FAILPOINT("stream.reader.connect") != FailpointOutcome::kNone) {
      return Status::NetworkError("failpoint: injected reader connect error");
    }
    std::string host = split_.host;
    int port = split_.port;
    uint64_t sink_key = split_.sink_key;
    if (restart) {
      // §6: report the failure; the coordinator answers with the endpoint
      // of the (restarted) SQL worker to resume from.
      ASSIGN_OR_RETURN(TcpSocket control,
                       TcpConnect(coordinator_host_, coordinator_port_));
      RegisterMlMessage report;
      report.split_id = split_.split_id;
      RETURN_IF_ERROR(SendFrame(&control, FrameType::kReportFailure,
                                report.Encode()));
      ASSIGN_OR_RETURN(Frame match_frame, RecvFrame(&control));
      if (match_frame.type != FrameType::kMatch) {
        return Status::NetworkError("coordinator failed to re-match: " +
                                    match_frame.payload);
      }
      ASSIGN_OR_RETURN(MatchMessage match,
                       MatchMessage::Decode(match_frame.payload));
      host = match.host;
      port = match.port;
      // A restarted sink re-registers under a fresh mux routing key; the
      // re-match carries the current one.
      sink_key = match.sink_key;
      if (metrics_ != nullptr) metrics_->Increment("stream.reconnects");
    }
    HelloMessage hello;
    hello.split_id = split_.split_id;
    hello.restart = restart;
    // A reader that held this connection before resumes from its own
    // applied position; a fresh one (first connect, or a replacement after
    // reassignment) lets the sink decide from its cumulative ack.
    hello.resume_seq =
        ever_connected_ ? static_cast<int64_t>(last_applied_seq_) : -1;
    if (MuxEnabled() && sink_key != 0) {
      // The HELLO rides inside kOpenChannel on a pooled shared connection;
      // the sink's partition handler answers on the channel (kResume first).
      ASSIGN_OR_RETURN(
          channel_, MuxConnPool::Global().OpenChannel(
                        host, port, sink_key,
                        /*affinity=*/static_cast<uint64_t>(split_.split_id),
                        hello));
    } else {
      ASSIGN_OR_RETURN(TcpSocket socket, TcpConnect(host, port));
      MetricsRegistry::Global().Increment("stream.reader.data_dials");
      channel_ = std::make_shared<SocketFrameChannel>(std::move(socket));
      RETURN_IF_ERROR(channel_->Send(FrameType::kHello, hello.Encode(), 0));
    }

    Frame resume_frame;
    RETURN_IF_ERROR(channel_->Recv(&resume_frame));
    if (resume_frame.type != FrameType::kResume) {
      if (resume_frame.type == FrameType::kError) {
        return DecodeStatusPayload(resume_frame.payload);
      }
      return Status::NetworkError("expected resume frame");
    }
    ASSIGN_OR_RETURN(ResumeMessage resume,
                     ResumeMessage::Decode(resume_frame.payload));
    if (!ever_connected_) {
      // Inherit the channel position: rows [1, resume_rows] were applied by
      // a previous incarnation and stay in the partition buffer (the runner
      // truncates it to exactly this count).
      last_applied_seq_ = resume.resume_seq;
      applied_rows_ = resume.resume_rows;
      resume_rows_ = resume.resume_rows;
    } else if (resume.resume_seq > last_applied_seq_) {
      return Status::DataLoss("sink resumed at frame " +
                              std::to_string(resume.resume_seq) +
                              " but reader applied only through " +
                              std::to_string(last_applied_seq_));
    }

    Frame schema_frame;
    RETURN_IF_ERROR(channel_->Recv(&schema_frame));
    if (schema_frame.type != FrameType::kSchema) {
      return Status::NetworkError("expected schema frame");
    }
    Decoder schema_decoder(schema_frame.payload);
    ASSIGN_OR_RETURN(schema_, DecodeSchema(&schema_decoder));
    if (!col_batch_.has_value()) col_batch_.emplace(schema_);
    // The per-connection span parents to the *sender's* span carried in the
    // schema frame header: the SQL worker's trace continues on the ML side.
    CloseStreamSpan(/*error=*/false);
    stream_span_.emplace("reader.stream", schema_frame.trace);
    stream_span_->AddAttribute("split", split_.split_id);
    stream_span_->AddAttribute("restart", restart ? 1 : 0);
    stream_span_->AddAttribute("resume_seq",
                               static_cast<int64_t>(last_applied_seq_));
    connected_ = true;
    ever_connected_ = true;
    if (batch_pending_) {
      // The connection dropped while the staged frame was only partially
      // handed to the ML job. Those delivered rows stay in the partition,
      // and the frame was never committed or acked, so the sink will replay
      // it; remember the delivered prefix so the replay skips exactly it.
      skip_seq_ = batch_seq_;
      skip_rows_ = batch_index_;
    }
    batch_.clear();
    col_batch_->Clear();
    staged_size_ = 0;
    staged_columnar_ = false;
    batch_index_ = 0;
    batch_pending_ = false;
    pending_ack_ = false;
    return Status::OK();
  }

  /// Acknowledges the last fully-consumed frame. Called only once every row
  /// of that frame has been returned from Next — i.e. applied by the ML job
  /// — so the sink never trims a frame whose rows could still be lost.
  Status FlushAck() {
    if (!pending_ack_) return Status::OK();
    pending_ack_ = false;
    RETURN_IF_ERROR(
        channel_->Send(FrameType::kDataAck, "", last_applied_seq_));
    if (heartbeat_ != nullptr) heartbeat_->set_applied_seq(last_applied_seq_);
    return Status::OK();
  }

  /// Next row from the live connection; false at clean end-of-stream.
  Result<bool> NextFromConnection(Row* out) {
    for (;;) {
      if (batch_index_ < staged_size_) {
        if (staged_columnar_) {
          col_batch_->EmitRow(batch_index_++, out);
        } else {
          *out = std::move(batch_[batch_index_++]);
        }
        return true;
      }
      ASSIGN_OR_RETURN(bool live, AdvanceToStagedFrame());
      if (!live) return false;
    }
  }

  /// The undelivered remainder of the staged frame as one columnar batch;
  /// false at clean end-of-stream. The common case — a whole columnar frame
  /// not yet touched — moves the decoded batch out without copying.
  Result<bool> NextBatchFromConnection(ColumnBatch* out) {
    for (;;) {
      if (batch_index_ < staged_size_) {
        if (staged_columnar_ && batch_index_ == 0) {
          *out = std::move(*col_batch_);
          col_batch_->Reset(schema_);
        } else if (staged_columnar_) {
          *out = col_batch_->Slice(batch_index_);
        } else {
          ColumnBatch converted(schema_);
          converted.Reserve(staged_size_ - batch_index_);
          for (size_t r = batch_index_; r < staged_size_; ++r) {
            RETURN_IF_ERROR(converted.AppendRow(batch_[r]));
          }
          *out = std::move(converted);
        }
        batch_index_ = staged_size_;
        return true;
      }
      ASSIGN_OR_RETURN(bool live, AdvanceToStagedFrame());
      if (!live) return false;
    }
  }

  /// Commits the fully-delivered staged frame, acknowledges it, and
  /// receives until the next data frame is staged. Returns false at clean
  /// end-of-stream.
  Result<bool> AdvanceToStagedFrame() {
    if (batch_pending_) {
      // Every row of the staged frame has been handed to the ML job: only
      // now does the durable cursor advance. Committing at decode time
      // instead would make a reconnect resume past rows that were decoded
      // but never delivered.
      last_applied_seq_ = batch_seq_;
      applied_rows_ += staged_size_;
      batch_pending_ = false;
      pending_ack_ = true;
    }
    RETURN_IF_ERROR(FlushAck());
    for (;;) {
      RETURN_IF_ERROR(channel_->Recv(&frame_));
      switch (frame_.type) {
        case FrameType::kData:
        case FrameType::kColData: {
          if (SQLINK_FAILPOINT("stream.reader.frame") !=
              FailpointOutcome::kNone) {
            return Status::NetworkError("failpoint: injected frame error");
          }
          if (frame_.seq <= last_applied_seq_) {
            // At-least-once delivery: a replayed frame this reader already
            // applied. Drop it whole; re-ack so the sink can trim.
            frames_deduped_->Increment();
            pending_ack_ = true;
            RETURN_IF_ERROR(FlushAck());
            continue;
          }
          if (frame_.seq != last_applied_seq_ + 1) {
            return Status::NetworkError(
                "sequence gap: expected frame " +
                std::to_string(last_applied_seq_ + 1) + ", got " +
                std::to_string(frame_.seq));
          }
          if (frame_.type == FrameType::kData) {
            Decoder decoder(frame_.payload);
            ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
            batch_.clear();
            batch_.reserve(count);
            for (uint64_t i = 0; i < count; ++i) {
              ASSIGN_OR_RETURN(Row row, RowCodec::Decode(&decoder));
              batch_.push_back(std::move(row));
            }
            staged_size_ = batch_.size();
            staged_columnar_ = false;
          } else {
            RETURN_IF_ERROR(col_decoder_.DecodeBatch(frame_.payload, schema_,
                                                     &*col_batch_));
            staged_size_ = col_batch_->num_rows();
            staged_columnar_ = true;
          }
          batch_index_ = 0;
          if (frame_.seq == skip_seq_ && skip_rows_ > 0) {
            // Replay of the frame that was in flight when the previous
            // connection dropped: its first skip_rows_ rows already reached
            // the partition, so deliver only the tail.
            batch_index_ = std::min<size_t>(skip_rows_, staged_size_);
          }
          skip_seq_ = 0;
          skip_rows_ = 0;
          batch_seq_ = frame_.seq;
          batch_pending_ = true;
          if (bytes_received_ != nullptr) {
            bytes_received_->Add(static_cast<int64_t>(frame_.payload.size()));
          }
          if (options_.consume_delay_micros_per_frame > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                options_.consume_delay_micros_per_frame));
          }
          return true;
        }
        case FrameType::kDictPage:
          // Carries no sequence number: a (re)connect preamble that brings
          // this channel's dictionaries up to the sink's current state so
          // replayed delta frames resolve.
          RETURN_IF_ERROR(col_decoder_.ApplySnapshot(frame_.payload, schema_));
          continue;
        case FrameType::kEnd: {
          if (frame_.seq != last_applied_seq_) {
            return Status::NetworkError(
                "sequence gap at end of stream: sender closed at frame " +
                std::to_string(frame_.seq) + ", reader applied through " +
                std::to_string(last_applied_seq_));
          }
          Decoder decoder(frame_.payload);
          ASSIGN_OR_RETURN(uint64_t expected, decoder.GetVarint64());
          if (expected != applied_rows_) {
            return Status::DataLoss(
                "stream row count mismatch: applied " +
                std::to_string(applied_rows_) + ", sender sent " +
                std::to_string(expected));
          }
          if (heartbeat_ != nullptr && heartbeat_->revoked()) {
            // Fenced during the finale: do NOT confirm — the sink must keep
            // its window for the replacement reader.
            return heartbeat_->status();
          }
          // Confirm completion so the sender may release its retained
          // state; a sender tears down only after this acknowledgement.
          RETURN_IF_ERROR(channel_->Send(FrameType::kAck, "", 0));
          RETURN_IF_ERROR(CompleteSplit());
          // Clean close: frees the channel's slot on the shared connection
          // now instead of at reader destruction.
          CloseChannel(Status::OK());
          connected_ = false;
          return false;
        }
        case FrameType::kError:
          return DecodeStatusPayload(frame_.payload);
        default:
          return Status::NetworkError("unexpected data frame type");
      }
    }
  }

  /// Tells the coordinator the split is fully applied. Lease bookkeeping,
  /// but also the sink's out-of-band final-ack signal: if the kAck died
  /// with a shared connection, the sink's reconnect wait polls the
  /// coordinator (kSplitStatus) and finds the completion here — so this
  /// must run even when heartbeats are disabled.
  Status CompleteSplit() {
    auto control = TcpConnect(coordinator_host_, coordinator_port_);
    if (!control.ok()) return Status::OK();  // Best-effort.
    CompleteSplitMessage msg;
    msg.split_id = split_.split_id;
    msg.epoch = split_.epoch;
    msg.rows = applied_rows_;
    (void)SendFrame(&*control, FrameType::kCompleteSplit, msg.Encode());
    (void)RecvFrame(&*control);
    return Status::OK();
  }

  /// Finishes the per-connection span, stamping the delivered-row count.
  void CloseStreamSpan(bool error) {
    if (!stream_span_.has_value()) return;
    stream_span_->AddAttribute("rows_delivered",
                               static_cast<int64_t>(delivered_));
    if (error) stream_span_->SetError();
    stream_span_.reset();
  }

  /// Drops the transport. A non-OK status shuts the channel down abortively
  /// (mux mode: kCloseChannel tells the sink why, the shared socket is
  /// untouched); releasing a healthy channel closes it cleanly.
  void CloseChannel(const Status& status) {
    if (channel_ == nullptr) return;
    if (!status.ok()) channel_->Shutdown(status);
    channel_.reset();
  }

  Status HandleFailure(const Status& cause) {
    CloseChannel(cause);
    connected_ = false;
    CloseStreamSpan(/*error=*/true);
    if (heartbeat_ != nullptr && heartbeat_->revoked()) {
      return heartbeat_->status();
    }
    if (!options_.recovery_enabled || reconnects_ >= options_.max_reconnects) {
      return cause;
    }
    ++reconnects_;
    LOG_WARNING() << "stream split " << split_.split_id
                  << " transfer failed (" << cause.message()
                  << "), attempting recovery " << reconnects_;
    if (!reconnect_backoff_.Backoff()) {
      // The backoff deadline bounds total recovery time even when
      // max_reconnects would allow further attempts.
      return cause;
    }
    return Status::OK();
  }

  std::string coordinator_host_;
  int coordinator_port_;
  StreamSplitInfo split_;
  const std::string row_failpoint_name_;
  const std::string kill_failpoint_name_;
  StreamReaderOptions options_;
  MetricsRegistry* metrics_;
  Counter* bytes_received_;
  Counter* rows_delivered_;
  Counter* frames_deduped_;
  std::optional<TraceSpan> stream_span_;
  std::unique_ptr<HeartbeatSender> heartbeat_;

  FrameChannelPtr channel_;        // Transport: pooled mux channel or a
                                   // dedicated socket (SQLINK_MUX=off).
  bool connected_ = false;
  bool ever_connected_ = false;
  bool done_ = false;
  SchemaPtr schema_;               // Decoded from the kSchema frame.
  Frame frame_;                    // Receive scratch reused across frames.
  ColumnarChannelDecoder col_decoder_;
  std::optional<ColumnBatch> col_batch_;  // Staged kColData frame (Connect
                                          // creates it with the schema).
  std::vector<Row> batch_;         // Staged kData frame.
  bool staged_columnar_ = false;   // Which staging buffer holds the frame.
  size_t staged_size_ = 0;         // Rows in the staged frame.
  size_t batch_index_ = 0;         // Next staged row to deliver.
  uint64_t batch_seq_ = 0;         // Frame the staged rows decoded from.
  bool batch_pending_ = false;     // Staged but not fully delivered.
  uint64_t skip_seq_ = 0;          // Frame whose replay skips a prefix of
  uint64_t skip_rows_ = 0;         // skip_rows_ already-delivered rows.
  bool pending_ack_ = false;       // last_applied_seq_ not yet acked.
  uint64_t last_applied_seq_ = 0;  // Highest frame fully handed to the job.
  uint64_t applied_rows_ = 0;      // Rows in frames [1, last_applied_seq_].
  uint64_t resume_rows_ = 0;       // Partition truncation point (Open).
  uint64_t delivered_ = 0;         // Rows handed to the ML job by *this* reader.
  int reconnects_ = 0;
  RetryPolicy reconnect_backoff_;
};

}  // namespace

SqlStreamInputFormat::SqlStreamInputFormat(std::string coordinator_host,
                                           int coordinator_port,
                                           StreamReaderOptions options)
    : coordinator_host_(std::move(coordinator_host)),
      coordinator_port_(coordinator_port),
      options_(options) {}

Result<std::vector<ml::InputSplitPtr>> SqlStreamInputFormat::GetSplits(
    const ml::JobContext& context) {
  (void)context;
  // Step 3: the customized getInputSplits contacts the coordinator. The
  // exchange is read-only on the coordinator, so dropped control
  // connections are simply retried with backoff.
  TraceSpan span("reader.get_splits");
  RetryPolicy retry(RetryPolicy::Options{});
  Result<SplitsMessage> exchange = retry.Run([&]() -> Result<SplitsMessage> {
    ASSIGN_OR_RETURN(TcpSocket control,
                     TcpConnect(coordinator_host_, coordinator_port_));
    RETURN_IF_ERROR(SendFrame(&control, FrameType::kGetSplits, ""));
    ASSIGN_OR_RETURN(Frame frame, RecvFrame(&control));
    if (frame.type != FrameType::kSplits) {
      return Status::NetworkError("coordinator did not return splits: " +
                                  frame.payload);
    }
    return SplitsMessage::Decode(frame.payload);
  });
  if (!exchange.ok()) return exchange.status();
  SplitsMessage msg = exchange.MoveValue();
  schema_ = msg.schema;
  std::vector<ml::InputSplitPtr> splits;
  splits.reserve(msg.splits.size());
  for (StreamSplitInfo& info : msg.splits) {
    splits.push_back(std::make_shared<StreamSplit>(std::move(info)));
  }
  return splits;
}

Result<std::unique_ptr<ml::RecordReader>> SqlStreamInputFormat::CreateReader(
    const ml::JobContext& context, const ml::InputSplit& split,
    int worker_id) {
  (void)worker_id;
  const auto* stream_split = dynamic_cast<const StreamSplit*>(&split);
  if (stream_split == nullptr) {
    return Status::InvalidArgument("SqlStreamInputFormat needs a StreamSplit");
  }
  return std::unique_ptr<ml::RecordReader>(new StreamRecordReader(
      coordinator_host_, coordinator_port_, stream_split->info(), options_,
      context.metrics));
}

bool SqlStreamInputFormat::SupportsReassignment() const {
  return options_.heartbeat_ms > 0;
}

Result<ml::ReassignedSplit> SqlStreamInputFormat::AcquireReassigned() {
  ASSIGN_OR_RETURN(TcpSocket control,
                   TcpConnect(coordinator_host_, coordinator_port_));
  RETURN_IF_ERROR(SendFrame(&control, FrameType::kAcquireSplit, ""));
  ASSIGN_OR_RETURN(Frame frame, RecvFrame(&control));
  if (frame.type == FrameType::kError) {
    return DecodeStatusPayload(frame.payload);
  }
  if (frame.type != FrameType::kSplitGrant) {
    return Status::NetworkError("coordinator did not answer split acquire");
  }
  ASSIGN_OR_RETURN(SplitGrantMessage grant,
                   SplitGrantMessage::Decode(frame.payload));
  ml::ReassignedSplit result;
  if (grant.granted) {
    result.index = grant.split.split_id;
    result.split = std::make_shared<StreamSplit>(std::move(grant.split));
  }
  return result;
}

void SqlStreamInputFormat::AbortTransfer(const Status& status) {
  auto control = TcpConnect(coordinator_host_, coordinator_port_);
  if (!control.ok()) return;
  (void)SendFrame(&*control, FrameType::kAbortQuery, EncodeStatus(status));
  (void)RecvFrame(&*control);
}

}  // namespace sqlink
