#ifndef SQLINK_EXTTOOL_EXTERNAL_TRANSFORM_H_
#define SQLINK_EXTTOOL_EXTERNAL_TRANSFORM_H_

#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "dfs/dfs.h"
#include "ml/input_format.h"
#include "table/schema.h"
#include "transform/coding.h"
#include "transform/recode_map.h"

namespace sqlink {

/// Stand-in for the external transformation tool of the naive baseline
/// (the paper uses Jaql, which "has built-in functions for recoding of
/// categorical variables and dummy coding"). It is a separate MapReduce-
/// style job between two filesystem materializations:
///
///   pass 1: workers scan the DFS input splits and compute the global
///           recode map (local distincts → merge → sorted code assignment);
///   pass 2: workers re-scan, apply recoding + coding, and write the
///           transformed rows back to DFS as text part files.
///
/// This reproduces the baseline's cost structure: one extra full read plus
/// one extra full (replicated) write, none of it pipelined with the SQL
/// query or the ML job.
class ExternalTransformTool {
 public:
  ExternalTransformTool(DfsPtr dfs, ClusterPtr cluster)
      : dfs_(std::move(dfs)), cluster_(std::move(cluster)) {}

  struct Result_ {
    RecodeMap recode_map;
    SchemaPtr output_schema;
    uint64_t rows = 0;
    std::string output_path;
  };

  /// Transforms CSV data at `input_path` (typed by `input_schema`) into
  /// CSV part files under `output_path`.
  Result<Result_> Run(const std::string& input_path, SchemaPtr input_schema,
                      const std::vector<std::string>& recode_columns,
                      const std::map<std::string, CodingScheme>& codings,
                      const std::string& output_path);

 private:
  DfsPtr dfs_;
  ClusterPtr cluster_;
};

}  // namespace sqlink

#endif  // SQLINK_EXTTOOL_EXTERNAL_TRANSFORM_H_
