# Empty dependencies file for sqlink_pipeline.
# This may be replaced when dependencies are built.
