#ifndef SQLINK_COMMON_RANDOM_H_
#define SQLINK_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sqlink {

/// Deterministic, fast PRNG (xorshift128+) for synthetic data generation.
/// Not thread-safe; give each worker its own instance seeded by worker id so
/// generated datasets are reproducible regardless of scheduling.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    // SplitMix64 seeding avoids weak all-zero states.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    for (uint64_t* s : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      *s = x ^ (x >> 31);
    }
  }

  uint64_t NextUint64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return NextUint64() % bound; }

  /// Uniform integer in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Random lower-case ASCII string of the given length.
  std::string NextString(size_t length);

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

/// Zipf(s) sampler over {0, ..., n-1}: rank r is drawn with probability
/// proportional to 1/(r+1)^s. Used to generate skewed join keys (hot
/// users owning most carts). Precomputes the CDF once; sampling is a
/// binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Random* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_RANDOM_H_
