#include "cluster/cluster.h"

#include "common/fs_util.h"
#include "common/status_macros.h"
#include "common/string_util.h"

namespace sqlink {

Result<std::shared_ptr<Cluster>> Cluster::Make(int num_nodes,
                                               const std::string& root_dir) {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  std::vector<std::string> node_dirs;
  node_dirs.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    std::string dir = root_dir + "/node" + std::to_string(i);
    RETURN_IF_ERROR(EnsureDir(dir));
    node_dirs.push_back(std::move(dir));
  }
  return std::shared_ptr<Cluster>(
      new Cluster(num_nodes, root_dir, std::move(node_dirs)));
}

int Cluster::NodeFromHostName(const std::string& host) const {
  if (!StartsWith(host, "node")) return -1;
  auto id = ParseInt64(host.substr(4));
  if (!id.ok()) return -1;
  if (*id < 0 || *id >= num_nodes_) return -1;
  return static_cast<int>(*id);
}

}  // namespace sqlink
