#ifndef SQLINK_ML_INPUT_FORMAT_H_
#define SQLINK_ML_INPUT_FORMAT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/result.h"
#include "table/column_batch.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink::ml {

/// Job-level context shared by the input format and the workers — the
/// analogue of a Hadoop Configuration plus cluster handles.
struct JobContext {
  /// Requested number of ML workers. An InputFormat may override it when it
  /// returns a different number of splits (the split count wins, as in
  /// Hadoop: one record reader per split).
  int requested_workers = 0;
  ClusterPtr cluster;
  MetricsRegistry* metrics = nullptr;
  std::map<std::string, std::string> config;
};

/// One unit of input, consumed by exactly one ML worker — the Hadoop
/// InputSplit contract: a description of the data plus location hints the
/// scheduler uses to place the worker near its data.
class InputSplit {
 public:
  virtual ~InputSplit() = default;

  /// Host names (Cluster::HostName) where this split's data is local.
  virtual std::vector<std::string> Locations() const = 0;

  virtual std::string DebugString() const = 0;
};

using InputSplitPtr = std::shared_ptr<InputSplit>;

/// Sequentially yields the typed records of one split.
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Establishes the split's source before the first Next. Streaming readers
  /// negotiate their resume point here; file readers need nothing, so the
  /// default is a no-op (Next must lazily open when Open was never called).
  virtual Status Open() { return Status::OK(); }

  /// Rows of this split that an earlier, failed reader already applied —
  /// valid after Open. The runner truncates the split's partial partition
  /// buffer to this count before consuming, turning the transport's
  /// at-least-once replay into exactly-once apply.
  virtual uint64_t resume_row_count() const { return 0; }

  /// Fills `*out` and returns true, or false at end of split.
  virtual Result<bool> Next(Row* out) = 0;

  /// Whether NextBatch delivers data more cheaply than row-at-a-time Next —
  /// true for readers whose transport is already columnar.
  virtual bool SupportsBatches() const { return false; }

  /// Fills `*out` with the next columnar batch and returns true, or false
  /// at end of split. Rows delivered through either interface count the
  /// same toward resume_row_count bookkeeping; a split must be consumed
  /// through one interface, not a mix.
  virtual Result<bool> NextBatch(ColumnBatch* out) {
    (void)out;
    return Status::Unimplemented("reader does not support columnar batches");
  }
};

/// A split handed back by the coordinator after its original reader died.
/// `index` is the split's position in the GetSplits result — the partition
/// the replacement reader must resume.
struct ReassignedSplit {
  InputSplitPtr split;  ///< Null when nothing is pending reassignment.
  int index = -1;
};

/// The ingestion extension point of the ML system — the generic interface
/// the paper builds on ("any big ML system that uses Hadoop InputFormats to
/// ingest input data"). TextFileInputFormat reads DFS files; the paper's
/// SqlStreamInputFormat (stream module) receives rows over sockets from SQL
/// workers instead.
class InputFormat {
 public:
  virtual ~InputFormat() = default;

  /// Partitions the input; called once when the job launches.
  virtual Result<std::vector<InputSplitPtr>> GetSplits(
      const JobContext& context) = 0;

  /// Opens a reader for one split; called on the worker assigned to it.
  virtual Result<std::unique_ptr<RecordReader>> CreateReader(
      const JobContext& context, const InputSplit& split, int worker_id) = 0;

  /// Schema of the produced records.
  virtual SchemaPtr schema() const = 0;

  // --- §6 failure recovery (optional) ---------------------------------------
  // A format backed by a fault-tolerant transport can hand a dead worker's
  // split to a survivor. File formats don't need any of this.

  /// Whether splits of this format can be reacquired after a reader death.
  virtual bool SupportsReassignment() const { return false; }

  /// Polls for a split whose reader was declared dead. A null `split` means
  /// none is pending *right now* (the caller should back off and re-poll); a
  /// typed error (e.g. kAborted) means the transfer is over and the job must
  /// surface it.
  virtual Result<ReassignedSplit> AcquireReassigned() {
    return ReassignedSplit{};
  }

  /// Broadcasts a job-side abort so upstream producers stop waiting for
  /// readers that will never come. Best-effort.
  virtual void AbortTransfer(const Status& status) { (void)status; }
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_INPUT_FORMAT_H_
