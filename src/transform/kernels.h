#ifndef SQLINK_TRANSFORM_KERNELS_H_
#define SQLINK_TRANSFORM_KERNELS_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "table/column_batch.h"
#include "transform/recode_map.h"

namespace sqlink {

/// Vectorized recode apply (§2.1): dictionary-encoded STRING column →
/// INT64 code column. The recode-map lookup runs once per *distinct* value
/// of the batch (a translate table over the input dictionary); rows are then
/// a plain integer gather — no per-row Value boxing, hashing, or string
/// copies. NULL rows stay NULL (placeholder 0). A non-NULL value absent
/// from the map fails with the same NotFound message as RecodeMap::Code.
/// Per-row lookup cost lands in the `transform.recode_lookup_ns` histogram.
Status RecodeColumnKernel(const Column& input, size_t num_rows,
                          std::string_view column_name,
                          const RecodeMap::ColumnDict& dict, Column* out);

/// Vectorized coding apply (§2.2): INT64 recoded column → the generated
/// feature columns of `matrix` (one output Column per contrast column),
/// written straight into typed vectors. `generated_type` is kInt64 for
/// dummy/effect coding, kDouble for orthogonal. Levels are validated in one
/// pass (NULL or out-of-range [1, cardinality] fails with the row path's
/// exact messages), then each output column is a tight gather loop.
Status ApplyCodingKernel(const Column& input, size_t num_rows, int cardinality,
                         const std::vector<std::vector<double>>& matrix,
                         DataType generated_type, std::vector<Column>* out);

}  // namespace sqlink

#endif  // SQLINK_TRANSFORM_KERNELS_H_
