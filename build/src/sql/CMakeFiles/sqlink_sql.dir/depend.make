# Empty dependencies file for sqlink_sql.
# This may be replaced when dependencies are built.
