// Figure 3 reproduction: comparison of the three approaches of connecting
// big SQL and big ML systems.
//
// Paper setup: IBM Big SQL + Spark MLlib on 5 servers; carts = 1 B rows
// (56 GB), users = 10 M rows; transformed data 5.6 GB. Reported stage
// breakdown (seconds, read off the figure):
//   naive        : prep ~190, trsfm ~300, input-for-ml ~46   (total ~536)
//   insql        : prep+trsfm ~312, input-for-ml ~46         (total ~358)
//   insql+stream : prep+trsfm+input ~315                     (total ~315)
// i.e. insql ≈ 1.7x over naive; streaming removes the ~46 s HDFS ingest.
//
// Here the same pipeline runs on the simulated 4-worker cluster with a
// scaled-down carts table (default 400k rows; override with argv[1]).
// Absolute seconds differ; the *shape* — naive slowest because of the extra
// materialization and the extra transformation job, streaming removing the
// ML-side read — is the reproduced result.

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/runtime_flags.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 400000);
  auto env = BenchEnv::Make(rows);
  const TransformRequest request = BenchEnv::PaperRequest();

  std::printf("=== Figure 3: three approaches of connecting SQL and ML ===\n");
  std::printf("carts rows: %lld, workers: %d\n\n",
              static_cast<long long>(rows), env->engine->num_workers());
  std::printf("%-14s %10s %10s %14s %12s %10s\n", "approach", "prep(s)",
              "trsfm(s)", "prep+trsfm(s)", "input(s)", "total(s)");

  struct RunResult {
    std::string name;
    StageTimings timings;
  };
  std::vector<RunResult> results;

  // One untimed warmup (allocator/page-cache effects) before measuring.
  {
    PipelineOptions warmup;
    warmup.approach = ConnectApproach::kInSql;
    warmup.use_cache = false;
    (void)env->pipeline->Prepare(request, warmup);
  }

  for (ConnectApproach approach :
       {ConnectApproach::kNaive, ConnectApproach::kInSql,
        ConnectApproach::kInSqlStream}) {
    PipelineOptions options;
    options.approach = approach;
    options.use_cache = false;
    auto result = env->pipeline->Prepare(request, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n",
                   std::string(ConnectApproachToString(approach)).c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    const StageTimings& t = result->timings;
    std::printf("%-14s %10.3f %10.3f %14.3f %12.3f %10.3f\n",
                std::string(ConnectApproachToString(approach)).c_str(),
                t.prep_seconds, t.transform_seconds, t.prep_transform_seconds,
                t.ml_input_seconds, t.total_seconds);
    results.push_back(
        {std::string(ConnectApproachToString(approach)), t});
    // Recorded per approach so SQLINK_COLUMNAR=on/off sweeps are
    // distinguishable in the JSON series.
    sqlink::bench::BenchJsonLine("figure3")
        .Param("approach", results.back().name)
        .Param("rows", rows)
        .Param("columnar", ColumnarEnabled())
        .Param("ml_input_s", t.ml_input_seconds)
        .Emit(t.total_seconds * 1000.0);
  }

  const double naive_total = results[0].timings.total_seconds;
  const double insql_total = results[1].timings.total_seconds;
  const double stream_total = results[2].timings.total_seconds;
  std::printf("\nspeedups: insql %.2fx over naive (paper: ~1.7x), "
              "insql+stream %.2fx over naive\n",
              naive_total / insql_total, naive_total / stream_total);
  std::printf("streaming saves %.3fs of ML ingest (paper: ~46s of ~358s)\n",
              results[1].timings.ml_input_seconds);
  const bool shape_holds =
      naive_total > insql_total && insql_total > stream_total;
  std::printf("shape holds (naive > insql > insql+stream): %s\n",
              shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 2;
}
