#include "serving/admission.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace sqlink {

namespace {

/// Per-tenant counter, resolved on demand ("serving.tenant.alice.admitted").
Counter* TenantCounter(const std::string& tenant, const char* what) {
  const std::string name =
      "serving.tenant." + (tenant.empty() ? std::string("default") : tenant) +
      "." + what;
  return MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

AdmissionOptions AdmissionOptions::FromEnv() {
  AdmissionOptions options;
  options.max_concurrent = static_cast<int>(
      EnvInt64("SQLINK_MAX_CONCURRENT_QUERIES", options.max_concurrent));
  options.memory_budget_bytes =
      EnvInt64("SQLINK_ADMISSION_MEM_BYTES", options.memory_budget_bytes);
  options.per_query_mem_bytes =
      EnvInt64("SQLINK_QUERY_MEM_BYTES", options.per_query_mem_bytes);
  options.queue_capacity = static_cast<size_t>(EnvInt64(
      "SQLINK_ADMISSION_QUEUE_CAP", static_cast<int64_t>(options.queue_capacity)));
  options.queue_timeout_ms = static_cast<int>(
      EnvInt64("SQLINK_ADMISSION_QUEUE_MS", options.queue_timeout_ms));
  const char* quota = std::getenv("SQLINK_TENANT_QUOTA");
  if (quota != nullptr && *quota != '\0') {
    for (const std::string& entry : SplitString(quota, ',')) {
      const size_t eq = entry.find('=');
      if (eq == std::string::npos) continue;
      const std::string name(TrimWhitespace(entry.substr(0, eq)));
      const std::string value(TrimWhitespace(entry.substr(eq + 1)));
      char* end = nullptr;
      const double weight = std::strtod(value.c_str(), &end);
      if (name.empty() || end == value.c_str() || weight <= 0.0) {
        LOG_WARNING() << "ignoring malformed SQLINK_TENANT_QUOTA entry: "
                      << entry;
        continue;
      }
      options.tenant_weights[name] = weight;
    }
  }
  return options;
}

AdmissionTicket::~AdmissionTicket() {
  if (controller_ != nullptr) controller_->Release();
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)),
      admitted_total_(MetricsRegistry::Global().GetCounter("serving.admitted")),
      rejected_total_(MetricsRegistry::Global().GetCounter("serving.rejected")),
      queued_total_(MetricsRegistry::Global().GetCounter("serving.queued")),
      active_gauge_(MetricsRegistry::Global().GetGauge("serving.active")),
      queue_depth_gauge_(
          MetricsRegistry::Global().GetGauge("serving.queue_depth")),
      queue_wait_ms_(
          MetricsRegistry::Global().GetHistogram("serving.queue_wait_ms")) {
  if (options_.max_concurrent <= 0) options_.max_concurrent = 1;
}

AdmissionController::~AdmissionController() { Close(); }

double AdmissionController::WeightOf(const std::string& tenant) const {
  auto it = options_.tenant_weights.find(tenant);
  return it == options_.tenant_weights.end() ? 1.0 : it->second;
}

bool AdmissionController::HasCapacityLocked() const {
  if (active_ >= options_.max_concurrent) return false;
  if (options_.memory_budget_bytes > 0 &&
      memory_used_ + options_.per_query_mem_bytes >
          options_.memory_budget_bytes) {
    return false;
  }
  return true;
}

void AdmissionController::TakeCapacityLocked() {
  ++active_;
  memory_used_ += options_.per_query_mem_bytes;
  active_gauge_->Increment();
}

void AdmissionController::GrantWaitersLocked() {
  bool granted_any = false;
  while (!closed_ && !waiters_.empty() && HasCapacityLocked()) {
    // Stride scheduling: the waiter with the smallest virtual start time is
    // next, regardless of arrival order. FIFO breaks ties (stable min).
    auto best = waiters_.begin();
    for (auto it = std::next(waiters_.begin()); it != waiters_.end(); ++it) {
      if (it->vstart < best->vstart) best = it;
    }
    vtime_ = std::max(vtime_, best->vstart);
    TakeCapacityLocked();
    // The grant travels to the waiter via its id: it leaves the queue here
    // and finds itself in granted_ids_ when it wakes.
    granted_ids_.insert(best->id);
    waiters_.erase(best);
    granted_any = true;
  }
  if (granted_any) cv_.notify_all();
}

Result<AdmissionTicketPtr> AdmissionController::Admit(
    const std::string& tenant) {
  // `admission.delay` sleeps inside Evaluate (delay actions report kNone);
  // `admission.reject` turns this call into an injected overload rejection.
  (void)SQLINK_FAILPOINT("admission.delay");
  if (SQLINK_FAILPOINT("admission.reject") != FailpointOutcome::kNone) {
    rejected_total_->Increment();
    TenantCounter(tenant, "rejected")->Increment();
    return Status::Overloaded("failpoint: injected admission rejection");
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    rejected_total_->Increment();
    TenantCounter(tenant, "rejected")->Increment();
    return Status::Overloaded("server shutting down");
  }

  auto grant = [&](int64_t wait_ms) -> AdmissionTicketPtr {
    admitted_total_->Increment();
    TenantCounter(tenant, "admitted")->Increment();
    queue_wait_ms_->Record(wait_ms);
    ByteBudgetPtr budget;
    if (options_.memory_budget_bytes > 0) {
      budget = std::make_shared<ByteBudget>(options_.per_query_mem_bytes);
    }
    return AdmissionTicketPtr(
        new AdmissionTicket(this, tenant, std::move(budget), wait_ms));
  };

  // Immediate admission only when nobody is queued — arrivals must not jump
  // over waiters that stride scheduling would serve first.
  if (waiters_.empty() && HasCapacityLocked()) {
    TakeCapacityLocked();
    return grant(/*wait_ms=*/0);
  }

  if (waiters_.size() >= options_.queue_capacity) {
    rejected_total_->Increment();
    TenantCounter(tenant, "rejected")->Increment();
    return Status::Overloaded(
        "admission queue saturated (" + std::to_string(waiters_.size()) +
        " queued, capacity " + std::to_string(options_.queue_capacity) + ")");
  }

  // Queue under stride scheduling: this query starts at the tenant's virtual
  // clock (pulled up to global vtime so an idle tenant cannot bank share),
  // and the clock advances by the tenant's stride 1/weight.
  TenantClock& clock = tenants_[tenant];
  const double vstart = std::max(vtime_, clock.next_start);
  clock.next_start = vstart + 1.0 / WeightOf(tenant);
  Waiter waiter;
  waiter.id = next_waiter_id_++;
  waiter.tenant = tenant;
  waiter.vstart = vstart;
  waiters_.push_back(waiter);
  queued_total_->Increment();
  queue_depth_gauge_->Increment();
  const uint64_t my_id = waiter.id;

  Stopwatch waited;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.queue_timeout_ms);
  for (;;) {
    // A grant moves our entry from waiters_ into granted_ids_; check that
    // first so granted capacity never leaks on a racing timeout wake.
    if (granted_ids_.erase(my_id) > 0) {
      queue_depth_gauge_->Decrement();
      return grant(waited.ElapsedMicros() / 1000);
    }
    if (closed_) {
      queue_depth_gauge_->Decrement();
      RemoveWaiterLocked(my_id);
      rejected_total_->Increment();
      TenantCounter(tenant, "rejected")->Increment();
      return Status::Overloaded("server shutting down");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      queue_depth_gauge_->Decrement();
      RemoveWaiterLocked(my_id);
      rejected_total_->Increment();
      TenantCounter(tenant, "rejected")->Increment();
      return Status::Overloaded(
          "admission queue timeout after " +
          std::to_string(options_.queue_timeout_ms) + " ms (" +
          std::to_string(active_) + " active, " +
          std::to_string(waiters_.size()) + " queued)");
    }
    cv_.wait_until(lock, deadline);
  }
}

void AdmissionController::RemoveWaiterLocked(uint64_t id) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->id == id) {
      waiters_.erase(it);
      return;
    }
  }
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --active_;
  memory_used_ -= options_.per_query_mem_bytes;
  active_gauge_->Decrement();
  GrantWaitersLocked();
}

void AdmissionController::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

int AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

bool AdmissionController::saturated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size() >= options_.queue_capacity;
}

std::string AdmissionController::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return "{\"active\":" + std::to_string(active_) +
         ",\"queued\":" + std::to_string(waiters_.size()) +
         ",\"queue_capacity\":" + std::to_string(options_.queue_capacity) +
         ",\"max_concurrent\":" + std::to_string(options_.max_concurrent) +
         ",\"memory_used_bytes\":" + std::to_string(memory_used_) +
         ",\"memory_budget_bytes\":" +
         std::to_string(options_.memory_budget_bytes) + "}";
}

}  // namespace sqlink
