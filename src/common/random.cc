#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace sqlink {

double Random::NextGaussian() {
  // Box–Muller; draw until u1 is non-zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::string Random::NextString(size_t length) {
  std::string result(length, 'a');
  for (char& c : result) {
    c = static_cast<char>('a' + Uniform(26));
  }
  return result;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfDistribution::Sample(Random* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<size_t>(it - cdf_.begin());
}

}  // namespace sqlink
