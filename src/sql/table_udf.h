#ifndef SQLINK_SQL_TABLE_UDF_H_
#define SQLINK_SQL_TABLE_UDF_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/byte_budget.h"
#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/result.h"
#include "sql/batch_iterator.h"
#include "sql/row_iterator.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink {

/// Per-worker execution context handed to a parallel table UDF.
struct TableUdfContext {
  int worker_id = 0;    ///< This SQL worker's id in [0, num_workers).
  int num_workers = 1;  ///< Total parallel SQL workers executing the UDF.
  ClusterPtr cluster;   ///< May be null outside a simulated cluster.
  MetricsRegistry* metrics = nullptr;  ///< Never null during execution.
  /// Id of the tracked query this UDF runs inside (0 = untracked). The
  /// streaming sink uses it to attach its transfer counters to the query's
  /// record in the QueryRegistry.
  uint64_t query_id = 0;
  /// Cooperative per-query cancellation (null = not cancellable). UDFs with
  /// parked threads register OnCancel callbacks that wake them (the sink
  /// cancels its queues and closes its inboxes).
  Cancellation* cancellation = nullptr;
  /// Per-query spill quota shared by all of the query's spill queues
  /// (null = unlimited); the serving layer carves it from the global
  /// admission memory pool.
  ByteBudgetPtr spill_budget;
};

/// A parallel table UDF — the paper's extensibility mechanism (§2, §3).
///
/// One instance is created per query execution. Bind() runs once on the
/// coordinator thread to derive the output schema; ProcessPartition() then
/// runs once per SQL worker, concurrently, consuming that worker's partition
/// of the input relation and pushing output rows. Finish() runs once after
/// all workers complete (cleanup, summary emission is not supported there).
///
/// Implementations must make ProcessPartition thread-safe across workers;
/// per-job shared state (e.g. a streaming coordinator handshake) lives in
/// the instance and is synchronized by the implementation.
class TableUdf {
 public:
  virtual ~TableUdf() = default;

  /// Derives the output schema. `input_schema` is null for source UDFs
  /// invoked without a relation argument. `args` are the literal scalar
  /// arguments of the call.
  virtual Result<SchemaPtr> Bind(const SchemaPtr& input_schema,
                                 const std::vector<Value>& args) = 0;

  /// Processes one worker's partition. `input` is null for source UDFs.
  virtual Status ProcessPartition(const TableUdfContext& context,
                                  RowIterator* input, RowSink* output) = 0;

  /// Batch-input variant, called by the vectorized executor: `input` is a
  /// columnar pipeline (null for source UDFs). The default adapts batches
  /// to rows and delegates to ProcessPartition; UDFs that can consume
  /// ColumnBatch directly (the streaming sink) override to skip the
  /// row detour entirely.
  virtual Status ProcessPartitionBatches(const TableUdfContext& context,
                                         BatchIterator* input,
                                         RowSink* output);

  /// Runs once after all workers returned (success or failure).
  virtual Status Finish() { return Status::OK(); }
};

using TableUdfPtr = std::shared_ptr<TableUdf>;
using TableUdfFactory = std::function<TableUdfPtr()>;

/// Registry of table UDFs, keyed case-insensitively. A fresh UDF instance is
/// created for every invocation.
/// Thread-safe: concurrent queries register the stream-sink UDF lazily
/// from their own threads (StreamingTransfer::Run), racing with lookups.
class TableUdfRegistry {
 public:
  Status Register(const std::string& name, TableUdfFactory factory);
  Result<TableUdfPtr> Create(const std::string& name) const;
  bool Contains(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableUdfFactory> factories_;  // Lower-case key.
};

}  // namespace sqlink

#endif  // SQLINK_SQL_TABLE_UDF_H_
