#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace sqlink {
namespace {

/// Each test disarms everything it armed; the fixture guarantees it even on
/// assertion failure so tests stay independent within one process.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().ClearAll(); }

  FailpointRegistry& registry() { return FailpointRegistry::Global(); }
};

TEST_F(FailpointTest, UnarmedPointIsFreeAndInert) {
  EXPECT_FALSE(FailpointRegistry::AnyActive());
  EXPECT_EQ(SQLINK_FAILPOINT("never.configured"), FailpointOutcome::kNone);
  // An unarmed evaluation does not even count hits (the fast path skips the
  // registry entirely).
  EXPECT_EQ(registry().Hits("never.configured"), 0);
}

TEST_F(FailpointTest, OneShotErrorFiresExactlyOnce) {
  ASSERT_TRUE(registry().Configure("pt.oneshot", "error(1)").ok());
  EXPECT_TRUE(FailpointRegistry::AnyActive());
  EXPECT_EQ(SQLINK_FAILPOINT("pt.oneshot"), FailpointOutcome::kError);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SQLINK_FAILPOINT("pt.oneshot"), FailpointOutcome::kNone);
  }
  EXPECT_EQ(registry().Hits("pt.oneshot"), 11);
  EXPECT_EQ(registry().Fires("pt.oneshot"), 1);
}

TEST_F(FailpointTest, AfterSkipsLeadingHits) {
  ASSERT_TRUE(registry().Configure("pt.after", "after(4):error(1)").ok());
  for (int hit = 1; hit <= 10; ++hit) {
    const FailpointOutcome outcome = SQLINK_FAILPOINT("pt.after");
    EXPECT_EQ(outcome, hit == 5 ? FailpointOutcome::kError
                                : FailpointOutcome::kNone)
        << "hit " << hit;
  }
}

TEST_F(FailpointTest, EveryNthFiresPeriodically) {
  ASSERT_TRUE(registry().Configure("pt.every", "every(3):close").ok());
  std::vector<int> fired_hits;
  for (int hit = 1; hit <= 12; ++hit) {
    if (SQLINK_FAILPOINT("pt.every") == FailpointOutcome::kClose) {
      fired_hits.push_back(hit);
    }
  }
  EXPECT_EQ(fired_hits, (std::vector<int>{3, 6, 9, 12}));
}

TEST_F(FailpointTest, FireBudgetCapsTotalFires) {
  ASSERT_TRUE(registry().Configure("pt.budget", "every(2):error(3)").ok());
  int fires = 0;
  for (int i = 0; i < 100; ++i) {
    if (SQLINK_FAILPOINT("pt.budget") == FailpointOutcome::kError) ++fires;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(registry().Fires("pt.budget"), 3);
}

TEST_F(FailpointTest, SeededProbabilityIsDeterministic) {
  auto schedule = [&](const std::string& spec) {
    EXPECT_TRUE(registry().Configure("pt.prob", spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 500; ++i) {
      fired.push_back(SQLINK_FAILPOINT("pt.prob") == FailpointOutcome::kError);
    }
    registry().Clear("pt.prob");
    return fired;
  };
  const std::vector<bool> run1 = schedule("prob(0.3,42):error");
  const std::vector<bool> run2 = schedule("prob(0.3,42):error");
  const std::vector<bool> other_seed = schedule("prob(0.3,7):error");
  // Same seed -> the exact same injected-fault schedule; a different seed
  // diverges (with overwhelming probability over 500 draws).
  EXPECT_EQ(run1, run2);
  EXPECT_NE(run1, other_seed);
  const int fires = static_cast<int>(std::count(run1.begin(), run1.end(), true));
  EXPECT_GT(fires, 100);  // ~150 expected.
  EXPECT_LT(fires, 200);
}

TEST_F(FailpointTest, DelayActionSleepsInPlace) {
  ASSERT_TRUE(registry().Configure("pt.delay", "delay(30,1)").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(SQLINK_FAILPOINT("pt.delay"), FailpointOutcome::kNone);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  // Budget spent: the second evaluation must not sleep.
  const auto start2 = std::chrono::steady_clock::now();
  EXPECT_EQ(SQLINK_FAILPOINT("pt.delay"), FailpointOutcome::kNone);
  const auto elapsed2 = std::chrono::steady_clock::now() - start2;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed2)
                .count(),
            25);
}

TEST_F(FailpointTest, EnvStyleConfigStringArmsMultiplePoints) {
  ASSERT_TRUE(registry()
                  .ConfigureFromString(
                      "pt.a=error(1), pt.b = every(2):close , pt.c=off")
                  .ok());
  EXPECT_EQ(SQLINK_FAILPOINT("pt.a"), FailpointOutcome::kError);
  EXPECT_EQ(SQLINK_FAILPOINT("pt.b"), FailpointOutcome::kNone);
  EXPECT_EQ(SQLINK_FAILPOINT("pt.b"), FailpointOutcome::kClose);
  EXPECT_EQ(SQLINK_FAILPOINT("pt.c"), FailpointOutcome::kNone);
}

TEST_F(FailpointTest, ConfigStringRejectsMalformedEntries) {
  EXPECT_FALSE(registry().ConfigureFromString("missing-equals").ok());
  EXPECT_FALSE(registry().ConfigureFromString("pt.x=bogus").ok());
  EXPECT_FALSE(registry().ConfigureFromString("=error(1)").ok());
}

TEST_F(FailpointTest, ParseSpecAcceptsFullGrammar) {
  auto spec =
      FailpointRegistry::ParseSpec("after(9):every(2):prob(0.5,7):delay(12,3)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->action, FailpointSpec::Action::kDelay);
  EXPECT_EQ(spec->delay_ms, 12);
  EXPECT_EQ(spec->max_fires, 3);
  EXPECT_EQ(spec->skip_hits, 9);
  EXPECT_EQ(spec->every_nth, 2);
  EXPECT_DOUBLE_EQ(spec->probability, 0.5);
  EXPECT_EQ(spec->seed, 7u);

  auto bare = FailpointRegistry::ParseSpec("close");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->action, FailpointSpec::Action::kClose);
  EXPECT_EQ(bare->max_fires, -1);  // Unlimited.
}

TEST_F(FailpointTest, ParseSpecRejectsBadInput) {
  const char* bad[] = {
      "",          "bogus",          "error(x)",     "error(1",
      "prob(2):error", "after(-1):error", "delay()",  "every(0):error",
      "off(1)",    "after(1,2):error", "unknown(3):error",
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(FailpointRegistry::ParseSpec(spec).ok()) << spec;
  }
}

TEST_F(FailpointTest, OffAndClearDisarm) {
  ASSERT_TRUE(registry().Configure("pt.off", "error").ok());
  ASSERT_TRUE(registry().Configure("pt.off", "off").ok());
  EXPECT_EQ(SQLINK_FAILPOINT("pt.off"), FailpointOutcome::kNone);
  EXPECT_FALSE(FailpointRegistry::AnyActive());

  ASSERT_TRUE(registry().Configure("pt.clear", "error").ok());
  registry().Clear("pt.clear");
  EXPECT_EQ(SQLINK_FAILPOINT("pt.clear"), FailpointOutcome::kNone);
  EXPECT_FALSE(FailpointRegistry::AnyActive());
}

TEST_F(FailpointTest, ReconfigureResetsCounters) {
  ASSERT_TRUE(registry().Configure("pt.re", "error(1)").ok());
  EXPECT_EQ(SQLINK_FAILPOINT("pt.re"), FailpointOutcome::kError);
  ASSERT_TRUE(registry().Configure("pt.re", "error(1)").ok());
  EXPECT_EQ(registry().Hits("pt.re"), 0);
  // A fresh one-shot budget: it fires again.
  EXPECT_EQ(SQLINK_FAILPOINT("pt.re"), FailpointOutcome::kError);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    ScopedFailpoint scoped("pt.scoped", "error");
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_EQ(SQLINK_FAILPOINT("pt.scoped"), FailpointOutcome::kError);
    EXPECT_EQ(scoped.hits(), 1);
    EXPECT_EQ(scoped.fires(), 1);
  }
  EXPECT_FALSE(FailpointRegistry::AnyActive());
  EXPECT_EQ(SQLINK_FAILPOINT("pt.scoped"), FailpointOutcome::kNone);
}

TEST_F(FailpointTest, ConcurrentTriggeringIsExactlyCounted) {
  constexpr int kThreads = 8;
  constexpr int kEvalsPerThread = 250;
  constexpr int kBudget = 100;
  ASSERT_TRUE(registry()
                  .Configure("pt.mt", "error(" + std::to_string(kBudget) + ")")
                  .ok());
  std::atomic<int> observed_fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kEvalsPerThread; ++i) {
        if (SQLINK_FAILPOINT("pt.mt") == FailpointOutcome::kError) {
          observed_fires.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // The budget is enforced atomically: exactly kBudget fires across all
  // threads, and every evaluation was counted.
  EXPECT_EQ(observed_fires.load(), kBudget);
  EXPECT_EQ(registry().Fires("pt.mt"), kBudget);
  EXPECT_EQ(registry().Hits("pt.mt"), kThreads * kEvalsPerThread);
}

TEST_F(FailpointTest, HitAndFireCountersExportedAsMetrics) {
  const int64_t hits_before =
      MetricsRegistry::Global().Get("failpoint.pt.metrics.hits");
  const int64_t fired_before =
      MetricsRegistry::Global().Get("failpoint.pt.metrics.fired");
  ASSERT_TRUE(registry().Configure("pt.metrics", "every(2):error").ok());
  for (int i = 0; i < 6; ++i) (void)SQLINK_FAILPOINT("pt.metrics");
  EXPECT_EQ(MetricsRegistry::Global().Get("failpoint.pt.metrics.hits"),
            hits_before + 6);
  EXPECT_EQ(MetricsRegistry::Global().Get("failpoint.pt.metrics.fired"),
            fired_before + 3);
}

}  // namespace
}  // namespace sqlink
