#ifndef SQLINK_COMMON_LOGGING_H_
#define SQLINK_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace sqlink {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum level; messages below it are discarded.
/// Defaults to kInfo (kWarning while running under gtest keeps output clean).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with timestamp, level, file:line)
/// to stderr on destruction. kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace sqlink

#define SQLINK_LOG_IS_ON(level) \
  (::sqlink::LogLevel::level >= ::sqlink::GetLogLevel())

#define SQLINK_LOG_INTERNAL(level)                                       \
  ::sqlink::internal::LogMessage(::sqlink::LogLevel::level, __FILE__, \
                                 __LINE__)

#define LOG_DEBUG() \
  if (!SQLINK_LOG_IS_ON(kDebug)) ; else SQLINK_LOG_INTERNAL(kDebug)
#define LOG_INFO() \
  if (!SQLINK_LOG_IS_ON(kInfo)) ; else SQLINK_LOG_INTERNAL(kInfo)
#define LOG_WARNING() \
  if (!SQLINK_LOG_IS_ON(kWarning)) ; else SQLINK_LOG_INTERNAL(kWarning)
#define LOG_ERROR() \
  if (!SQLINK_LOG_IS_ON(kError)) ; else SQLINK_LOG_INTERNAL(kError)
#define LOG_FATAL() SQLINK_LOG_INTERNAL(kFatal)

/// Invariant check, enabled in all build types: databases do not ship with
/// their assertions compiled out.
#define SQLINK_CHECK(cond)                                    \
  if (cond) ; else                                            \
    LOG_FATAL() << "Check failed: " #cond " "

#define SQLINK_CHECK_OK(expr)                                 \
  do {                                                        \
    const ::sqlink::Status _st = (expr);                      \
    SQLINK_CHECK(_st.ok()) << _st.ToString();                 \
  } while (0)

#define SQLINK_DCHECK(cond) SQLINK_CHECK(cond)

#endif  // SQLINK_COMMON_LOGGING_H_
