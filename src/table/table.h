#ifndef SQLINK_TABLE_TABLE_H_
#define SQLINK_TABLE_TABLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "table/record_batch.h"
#include "table/schema.h"

namespace sqlink {

/// A horizontally partitioned table: one partition per SQL worker, the
/// storage model of an MPP engine. Partitions may be empty.
class Table {
 public:
  Table(std::string name, SchemaPtr schema, size_t num_partitions)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        partitions_(num_partitions) {}

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }

  size_t num_partitions() const { return partitions_.size(); }
  const std::vector<Row>& partition(size_t i) const { return partitions_[i]; }
  std::vector<Row>& mutable_partition(size_t i) { return partitions_[i]; }

  size_t TotalRows() const {
    size_t total = 0;
    for (const auto& p : partitions_) total += p.size();
    return total;
  }

  /// Appends a row to a specific partition.
  void AppendRow(size_t partition, Row row) {
    partitions_[partition].push_back(std::move(row));
  }

  /// All rows gathered into one vector (tests and small results only).
  std::vector<Row> GatherRows() const {
    std::vector<Row> all;
    all.reserve(TotalRows());
    for (const auto& p : partitions_) {
      all.insert(all.end(), p.begin(), p.end());
    }
    return all;
  }

 private:
  std::string name_;
  SchemaPtr schema_;
  std::vector<std::vector<Row>> partitions_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace sqlink

#endif  // SQLINK_TABLE_TABLE_H_
