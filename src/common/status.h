#ifndef SQLINK_COMMON_STATUS_H_
#define SQLINK_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace sqlink {

/// Error categories used across the library. Mirrors the usual database
/// status taxonomy (Arrow/RocksDB style): a Status is cheap to pass around,
/// OK is represented without allocation.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIoError = 4,
  kNetworkError = 5,
  kInternal = 6,
  kUnavailable = 7,
  kAborted = 8,
  kOutOfRange = 9,
  kFailedPrecondition = 10,
  kCancelled = 11,
  kUnimplemented = 12,
  kDataLoss = 13,
  kParseError = 14,
  kOverloaded = 15,
};

/// Returns the canonical lower-case name of a status code ("Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Functions in this library never
/// throw; fallible operations return Status (or Result<T> when they produce a
/// value). An OK status carries no message and no heap allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(code, std::move(message))) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// The human-readable message; empty for OK.
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string();
    return state_ == nullptr ? *kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNetworkError() const { return code() == StatusCode::kNetworkError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Returns a copy with `context + ": "` prepended to the message. Useful
  /// when propagating errors up through layers.
  Status WithContext(std::string_view context) const;

 private:
  struct State {
    State(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  // Shared so Status is cheap to copy; never mutated after construction.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace sqlink

#endif  // SQLINK_COMMON_STATUS_H_
