#ifndef SQLINK_STREAM_HEARTBEAT_H_
#define SQLINK_STREAM_HEARTBEAT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "stream/socket.h"
#include "stream/wire.h"

namespace sqlink {

/// Process-wide registry of shared heartbeat connections, one per
/// coordinator endpoint (mux mode). Senders acquire a refcounted handle in
/// Start() and drop it after the farewell beat; the last drop closes the
/// socket. Only the *connection* is shared — every lease keeps its own beat
/// thread and self-fencing clock, so one frozen sender cannot stall its
/// socket-mates' liveness.
class HeartbeatBus {
 public:
  /// One shared coordinator connection. Exchange() runs the whole
  /// send+reply round trip under the connection mutex, so concurrent
  /// senders' beats interleave at exchange granularity (the coordinator
  /// answers each heartbeat frame statelessly).
  class Conn {
   public:
    Conn(std::string host, int port);
    ~Conn();

    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    /// One beat: dials lazily, sends, and returns the reply frame. A
    /// transport error closes the socket; the next beat re-dials.
    Result<Frame> Exchange(const HeartbeatMessage& beat);

    /// Drops the socket (protocol desync); the next beat re-dials.
    void Invalidate();

   private:
    const std::string host_;
    const int port_;
    std::mutex mu_;
    TcpSocket socket_;  ///< Lazily dialed, re-dialed after errors.
  };

  static HeartbeatBus& Global();

  /// Refcounted handle to host:port's shared connection.
  std::shared_ptr<Conn> Acquire(const std::string& host, int port);

 private:
  HeartbeatBus() = default;

  std::mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<Conn>> conns_;
};

/// The participant half of the coordinator's lease protocol: a background
/// thread that renews a sink's or reader's lease every interval on a
/// persistent control connection, and watches the replies for revocation.
///
/// A lease is lost three ways, all surfaced through revoked()/status():
///  - the coordinator fenced this holder (a newer epoch owns the split);
///  - the coordinator broadcast a query abort (typed kAborted status);
///  - self-fencing: no successful ack within the lease TTL — the holder
///    must assume the coordinator already reassigned its split and stop
///    producing side effects *before* a replacement starts.
class HeartbeatSender {
 public:
  struct Options {
    std::string coordinator_host;
    int coordinator_port = 0;
    int interval_ms = 0;  ///< <= 0 disables heartbeats entirely.
    uint8_t role = HeartbeatMessage::kSink;
    int id = 0;           ///< Split id (reader) or SQL worker id (sink).
    int64_t epoch = 1;
    /// Failpoint evaluated before each beat (delay specs simulate a stalled
    /// participant); empty = none.
    std::string failpoint_name;
    /// Invoked once, from the heartbeat thread, when the lease is lost.
    std::function<void()> on_revoked;
  };

  /// Lease TTL as a multiple of the heartbeat interval — shared with the
  /// coordinator's reaper so self-fencing always precedes reassignment
  /// (the reaper adds a grace period on top).
  static constexpr int kLeaseIntervals = 3;

  explicit HeartbeatSender(Options options);
  ~HeartbeatSender();

  HeartbeatSender(const HeartbeatSender&) = delete;
  HeartbeatSender& operator=(const HeartbeatSender&) = delete;

  /// Starts the beat loop (no-op when interval_ms <= 0).
  void Start();

  /// Stops the loop. A bye other than kAlive is delivered best-effort as a
  /// final beat so the coordinator drops (kCompleted) or immediately
  /// reassigns (kFailed) the lease instead of waiting out the TTL.
  /// Idempotent; kAlive simulates a crash — the lease just expires.
  void Stop(uint8_t bye);

  /// Reader progress carried in each beat (observability).
  void set_applied_seq(uint64_t seq) {
    applied_seq_.store(seq, std::memory_order_relaxed);
  }

  bool enabled() const { return options_.interval_ms > 0; }
  bool revoked() const { return revoked_.load(std::memory_order_acquire); }
  /// Why the lease was lost (OK while the lease is healthy).
  Status status() const;

 private:
  void Loop();
  /// One beat on the persistent control connection (re-dialed on error).
  Status BeatOnce(uint8_t bye);
  void MarkRevoked(Status status);

  Options options_;
  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<bool> revoked_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  Status status_;
  TcpSocket control_;  ///< Owned by the beat thread (and final-bye sender).
  /// Mux mode: the peer's shared connection (control_ stays closed).
  std::shared_ptr<HeartbeatBus::Conn> bus_;
  std::thread thread_;
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_HEARTBEAT_H_
