// SQL-engine microbenchmarks: per-operator throughput of the substrate the
// In-SQL transformations run on (google-benchmark). The engine fixture is
// built once and shared across benchmarks.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "sql/engine.h"

namespace sqlink {
namespace {

using sqlink::bench::BenchEnv;

BenchEnv* Env() {
  static BenchEnv* const env = [] {
    return BenchEnv::Make(100000).release();
  }();
  return env;
}

void RunQuery(benchmark::State& state, const std::string& sql) {
  BenchEnv* env = Env();
  int64_t rows = 0;
  for (auto _ : state) {
    auto result = env->engine->ExecuteSql(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows += static_cast<int64_t>((*result)->TotalRows());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(rows);
}

void BM_Scan(benchmark::State& state) {
  RunQuery(state, "SELECT * FROM carts");
}
BENCHMARK(BM_Scan)->Unit(benchmark::kMillisecond);

void BM_FilterProject(benchmark::State& state) {
  RunQuery(state,
           "SELECT cartid, amount * 1.07 FROM carts WHERE amount > 250");
}
BENCHMARK(BM_FilterProject)->Unit(benchmark::kMillisecond);

void BM_BroadcastJoin(benchmark::State& state) {
  RunQuery(state,
           "SELECT U.age, C.amount FROM carts C, users U "
           "WHERE C.userid = U.userid");
}
BENCHMARK(BM_BroadcastJoin)->Unit(benchmark::kMillisecond);

void BM_Distinct(benchmark::State& state) {
  RunQuery(state, "SELECT DISTINCT abandoned, year FROM carts");
}
BENCHMARK(BM_Distinct)->Unit(benchmark::kMillisecond);

void BM_GroupByAggregate(benchmark::State& state) {
  RunQuery(state,
           "SELECT year, COUNT(*), AVG(amount) FROM carts GROUP BY year");
}
BENCHMARK(BM_GroupByAggregate)->Unit(benchmark::kMillisecond);

void BM_OrderByLimit(benchmark::State& state) {
  RunQuery(state,
           "SELECT cartid, amount FROM carts ORDER BY amount DESC LIMIT 100");
}
BENCHMARK(BM_OrderByLimit)->Unit(benchmark::kMillisecond);

void BM_RecodeLocalDistinctUdf(benchmark::State& state) {
  // The §2.1 phase-1 UDF: one parallel scan for two categorical columns.
  RunQuery(state,
           "SELECT DISTINCT colname, colval FROM "
           "TABLE(recode_local_distinct((SELECT * FROM carts), "
           "'abandoned'))");
}
BENCHMARK(BM_RecodeLocalDistinctUdf)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqlink

BENCHMARK_MAIN();
