#include "sql/engine.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace sqlink {

namespace {

/// SQLINK_SLOW_QUERY_MS as a threshold in milliseconds; negative = unset.
/// Re-read per query so tests can flip it with setenv.
int64_t SlowQueryThresholdMs() {
  const char* env = std::getenv("SQLINK_SLOW_QUERY_MS");
  if (env == nullptr || *env == '\0') return -1;
  return std::strtoll(env, nullptr, 10);
}

/// One-line plan summary for the slow-query log: pre-order node labels.
std::string PlanSummary(const QueryStats& stats) {
  std::string out;
  for (const auto& node : stats.nodes()) {
    if (!out.empty()) out += " <- ";
    out += node.label;
    if (out.size() > 160) {
      out += " ...";
      break;
    }
  }
  return out;
}

void MaybeLogSlowQuery(const std::string& sql, const QueryStats& stats,
                       int64_t duration_micros, MetricsRegistry* metrics) {
  const int64_t threshold_ms = SlowQueryThresholdMs();
  if (threshold_ms < 0 || duration_micros < threshold_ms * 1000) return;
  metrics->GetCounter("sql.slow_queries")->Add(1);
  std::ostringstream top;
  for (const auto& [label, micros] : stats.TopByTime(3)) {
    if (top.tellp() > 0) top << ", ";
    top << label << "=" << static_cast<double>(micros) / 1000.0 << "ms";
  }
  LOG_WARNING() << "slow query ("
                << static_cast<double>(duration_micros) / 1000.0
                << " ms, threshold " << threshold_ms << " ms): " << sql
                << " | plan: " << PlanSummary(stats)
                << " | top operators: " << top.str();
}

/// Records each executed node's q-error into the planner-feedback metrics:
/// the qerror_x100 histogram (100 = perfect estimate) and a misestimate
/// counter for nodes off by more than 4x either way.
void RecordPlannerFeedback(const QueryStats& stats, MetricsRegistry* metrics) {
  auto* histogram = metrics->GetHistogram("sql.planner.qerror_x100");
  auto* misestimates = metrics->GetCounter("sql.planner.misestimates");
  for (const auto& node : stats.nodes()) {
    const OperatorActuals* actuals = stats.actuals(node.id);
    if (actuals == nullptr ||
        actuals->invocations.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    const double q = QError(
        node.estimated_rows,
        static_cast<double>(actuals->rows.load(std::memory_order_relaxed)));
    histogram->Record(std::llround(q * 100.0));
    if (q > 4.0) misestimates->Add(1);
  }
}

}  // namespace

SqlEngine::SqlEngine(ClusterPtr cluster, MetricsRegistry* metrics)
    : cluster_(std::move(cluster)),
      num_workers_(cluster_->num_nodes()),
      metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Global()),
      scalar_udfs_(ScalarFunctionRegistry::WithBuiltins()) {}

std::shared_ptr<SqlEngine> SqlEngine::Make(ClusterPtr cluster,
                                           MetricsRegistry* metrics) {
  return std::shared_ptr<SqlEngine>(new SqlEngine(std::move(cluster), metrics));
}

Result<PlanPtr> SqlEngine::Plan(const std::string& sql) {
  ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  return PlanStmt(stmt);
}

Result<PlanPtr> SqlEngine::PlanStmt(const SelectStmt& stmt) {
  Planner planner(&catalog_, scalar_udfs_.get(), &table_udfs_, num_workers_,
                  planner_options_);
  return planner.PlanSelect(stmt);
}

Result<std::string> SqlEngine::ExplainSql(const std::string& sql) {
  ASSIGN_OR_RETURN(SqlStatement stmt, ParseStatement(sql));
  ASSIGN_OR_RETURN(PlanPtr plan, PlanStmt(stmt.select));
  return ExplainPlanText(plan);
}

TablePtr SqlEngine::MakePlanTextTable(const std::string& text,
                                      const std::string& result_name) const {
  auto table = std::make_shared<Table>(
      result_name, Schema::Make({{"plan", DataType::kString}}),
      static_cast<size_t>(num_workers_));
  std::vector<Row>& rows = table->mutable_partition(0);
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    rows.push_back(Row{Value::String(line)});
  }
  return table;
}

Result<TablePtr> SqlEngine::ExecuteSql(const std::string& sql,
                                       const std::string& result_name) {
  return ExecuteSql(sql, result_name, QueryOptions());
}

Result<TablePtr> SqlEngine::ExecuteSql(const std::string& sql,
                                       const std::string& result_name,
                                       const QueryOptions& options) {
  ASSIGN_OR_RETURN(SqlStatement stmt, ParseStatement(sql));
  ASSIGN_OR_RETURN(PlanPtr plan, PlanStmt(stmt.select));
  switch (stmt.explain) {
    case ExplainMode::kPlan:
      return MakePlanTextTable(ExplainPlanText(plan), result_name);
    case ExplainMode::kAnalyze: {
      std::shared_ptr<QueryStats> stats;
      ASSIGN_OR_RETURN(TablePtr ignored, RunTracked(plan, sql, "__analyzed",
                                                    &stats, options));
      (void)ignored;  // EXPLAIN ANALYZE discards the rows, keeps the stats.
      return MakePlanTextTable(stats->ToText(), result_name);
    }
    case ExplainMode::kNone:
      break;
  }
  return RunTracked(plan, sql, result_name, nullptr, options);
}

Result<TablePtr> SqlEngine::ExecuteStmt(const SelectStmt& stmt,
                                        const std::string& result_name) {
  ASSIGN_OR_RETURN(PlanPtr plan, PlanStmt(stmt));
  return ExecutePlan(plan, result_name);
}

Result<TablePtr> SqlEngine::ExecutePlan(const PlanPtr& plan,
                                        const std::string& result_name) {
  return RunTracked(plan, "<pre-built plan>", result_name, nullptr);
}

Result<TablePtr> SqlEngine::RunTracked(const PlanPtr& plan,
                                       const std::string& sql,
                                       const std::string& result_name,
                                       std::shared_ptr<QueryStats>* stats_out,
                                       const QueryOptions& options) {
  AssignPlanNodeIds(plan);
  auto stats = std::make_shared<QueryStats>(plan);
  if (stats_out != nullptr) *stats_out = stats;

  Executor executor(num_workers_, cluster_, metrics_);
  TraceSpan span("sql.query");
  QueryRecordPtr record = QueryRegistry::Global().Begin(
      sql, executor.vectorized() ? "vectorized" : "row", stats,
      span.context().trace_id, options.tenant);
  // RAII: any exit path that skips the explicit Finish below (an early
  // return added later, an abandoned analyze) still retires the record so
  // /queries never reports phantom active queries.
  TrackedQuery tracked(&QueryRegistry::Global(), record);
  executor.set_query_stats(stats.get());
  executor.set_query_id(record->query_id);
  executor.set_cancellation(options.cancellation);
  executor.set_spill_budget(options.spill_budget);

  metrics_->GetCounter("sql.queries")->Add(1);
  Gauge* active = metrics_->GetGauge("sql.queries_active");
  active->Add(1);
  Stopwatch timer;
  Result<PartitionedRows> rows = executor.Execute(plan);
  const int64_t duration_micros = timer.ElapsedMicros();
  active->Add(-1);
  metrics_->GetHistogram("sql.query_micros")->Record(duration_micros);

  RecordPlannerFeedback(*stats, metrics_);
  MaybeLogSlowQuery(sql, *stats, duration_micros, metrics_);

  int worst_node = -1;
  const double worst_qerror = stats->WorstQError(&worst_node);
  tracked.Finish(rows.status(), duration_micros, worst_qerror);
  span.AddAttribute("query_id", static_cast<int64_t>(record->query_id));
  span.AddAttribute("duration_micros", duration_micros);
  if (!rows.ok()) {
    span.SetError();
    return rows.status();
  }
  span.AddAttribute("rows", static_cast<int64_t>(rows->TotalRows()));

  auto table = std::make_shared<Table>(result_name, rows->schema,
                                       rows->partitions.size());
  for (size_t p = 0; p < rows->partitions.size(); ++p) {
    table->mutable_partition(p) = std::move(rows->partitions[p]);
  }
  return table;
}

Result<TablePtr> SqlEngine::MaterializeSql(const std::string& sql,
                                           const std::string& table_name) {
  ASSIGN_OR_RETURN(TablePtr table, ExecuteSql(sql, table_name));
  catalog_.PutTable(table);
  return table;
}

TablePtr SqlEngine::MakeTable(const std::string& name, SchemaPtr schema) const {
  return std::make_shared<Table>(name, std::move(schema),
                                 static_cast<size_t>(num_workers_));
}

}  // namespace sqlink
