#ifndef SQLINK_ML_VALIDATION_H_
#define SQLINK_ML_VALIDATION_H_

#include <functional>

#include "common/result.h"
#include "ml/dataset.h"

namespace sqlink::ml {

struct SplitDatasets {
  Dataset train;
  Dataset test;
};

/// Randomly splits every partition into train/test with the given test
/// fraction. Deterministic per seed; partitioning is preserved.
Result<SplitDatasets> TrainTestSplit(const Dataset& data,
                                     double test_fraction, uint64_t seed = 42);

/// Area under the ROC curve for a real-valued scorer (higher score = more
/// positive). Ties contribute half. Returns 0.5 when one class is absent.
double AreaUnderRoc(const Dataset& data,
                    const std::function<double(const DenseVector&)>& score);

}  // namespace sqlink::ml

#endif  // SQLINK_ML_VALIDATION_H_
