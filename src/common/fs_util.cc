#include "common/fs_util.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.h"

namespace sqlink {

namespace fs = std::filesystem;

Result<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  std::error_code ec;
  const fs::path base = fs::temp_directory_path(ec);
  if (ec) return Status::IoError("temp_directory_path: " + ec.message());
  for (int attempt = 0; attempt < 100; ++attempt) {
    const uint64_t id = counter.fetch_add(1);
    fs::path candidate =
        base / (prefix + "." + std::to_string(::getpid()) + "." +
                std::to_string(id));
    if (fs::create_directories(candidate, ec) && !ec) {
      return candidate.string();
    }
  }
  return Status::IoError("could not create temp dir with prefix " + prefix);
}

Status RemoveDirTree(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IoError("remove_all(" + path + "): " + ec.message());
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IoError("create_directories(" + path + "): " + ec.message());
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) return Status::IoError("short write: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename to " + path + ": " + ec.message());
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return content;
}

ScopedTempDir::ScopedTempDir(const std::string& prefix) {
  auto dir = MakeTempDir(prefix);
  SQLINK_CHECK(dir.ok()) << dir.status();
  path_ = *dir;
}

ScopedTempDir::~ScopedTempDir() {
  const Status status = RemoveDirTree(path_);
  if (!status.ok()) {
    LOG_WARNING() << "failed to remove temp dir " << path_ << ": " << status;
  }
}

}  // namespace sqlink
