#include "pipeline/datagen.h"

#include <memory>

#include "common/random.h"
#include "common/thread_pool.h"

namespace sqlink {

Result<CartsWorkload> GenerateCartsWorkload(
    SqlEngine* engine, const CartsWorkloadOptions& options) {
  if (options.num_users <= 0 || options.num_carts <= 0) {
    return Status::InvalidArgument("row counts must be positive");
  }
  const size_t partitions = static_cast<size_t>(engine->num_workers());

  CartsWorkload workload;
  auto users_schema = Schema::Make({{"userid", DataType::kInt64},
                                    {"age", DataType::kInt64},
                                    {"gender", DataType::kString},
                                    {"country", DataType::kString}});
  workload.users = engine->MakeTable("users", users_schema);
  auto carts_schema = Schema::Make({{"cartid", DataType::kInt64},
                                    {"userid", DataType::kInt64},
                                    {"amount", DataType::kDouble},
                                    {"nitems", DataType::kInt64},
                                    {"year", DataType::kInt64},
                                    {"abandoned", DataType::kString}});
  workload.carts = engine->MakeTable("carts", carts_schema);

  // Per-partition generation, deterministic per (seed, partition).
  ParallelFor(partitions, [&](size_t p) {
    Random rng(options.seed * 1000003 + p);
    for (int64_t id = static_cast<int64_t>(p); id < options.num_users;
         id += static_cast<int64_t>(partitions)) {
      workload.users->AppendRow(
          p, Row{Value::Int64(id), Value::Int64(rng.UniformInt(16, 90)),
                 Value::String(rng.Bernoulli(0.52) ? "F" : "M"),
                 Value::String(rng.Bernoulli(options.usa_fraction) ? "USA"
                                                                   : "CA")});
    }
  });
  std::unique_ptr<ZipfDistribution> zipf;
  if (options.zipf_skew > 0) {
    zipf = std::make_unique<ZipfDistribution>(
        static_cast<size_t>(options.num_users), options.zipf_skew);
  }
  ParallelFor(partitions, [&](size_t p) {
    Random rng(options.seed * 7000003 + p);
    for (int64_t id = static_cast<int64_t>(p); id < options.num_carts;
         id += static_cast<int64_t>(partitions)) {
      const int64_t userid =
          zipf != nullptr ? static_cast<int64_t>(zipf->Sample(&rng))
                          : rng.UniformInt(0, options.num_users - 1);
      const double amount = rng.NextDouble() * 500.0;
      // Signal: expensive carts abandon more; round numbers less.
      const double p_abandon =
          options.abandon_rate + (amount > 250 ? 0.25 : -0.15);
      workload.carts->AppendRow(
          p, Row{Value::Int64(id), Value::Int64(userid), Value::Double(amount),
                 Value::Int64(rng.UniformInt(1, 15)),
                 Value::Int64(rng.UniformInt(2013, 2015)),
                 Value::String(rng.Bernoulli(p_abandon) ? "Yes" : "No")});
    }
  });

  engine->catalog()->PutTable(workload.users);
  engine->catalog()->PutTable(workload.carts);
  return workload;
}

std::string CartsPrepQuery() {
  return "SELECT U.age, U.gender, C.amount, C.abandoned "
         "FROM carts C, users U "
         "WHERE C.userid = U.userid AND U.country = 'USA'";
}

}  // namespace sqlink
