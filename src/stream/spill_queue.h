#ifndef SQLINK_STREAM_SPILL_QUEUE_H_
#define SQLINK_STREAM_SPILL_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>

#include "common/metrics.h"
#include "common/result.h"

namespace sqlink {

/// The per-target send buffer of a SQL worker (§3): a FIFO of encoded
/// frames bounded by a byte budget (the paper's send-buffer size, 4 KB in
/// its experiments). When the ML consumer is slow and the buffer fills, the
/// producer either blocks (spill disabled — pure backpressure) or spills
/// overflow frames to a node-local disk file so the producer and consumer
/// stay decoupled ("we can spill it onto the local disks to synchronize the
/// producer and consumers").
///
/// FIFO order is preserved across the memory/disk boundary: once spilling
/// starts, new frames go to disk behind the spilled ones until the disk
/// backlog is fully drained.
class SpillingByteQueue {
 public:
  struct Options {
    size_t memory_capacity_bytes = 4096;
    bool spill_enabled = true;
    std::string spill_path;  ///< Required when spill_enabled.
  };

  explicit SpillingByteQueue(Options options);
  ~SpillingByteQueue();

  SpillingByteQueue(const SpillingByteQueue&) = delete;
  SpillingByteQueue& operator=(const SpillingByteQueue&) = delete;

  /// Enqueues one frame. Blocks while full with spill disabled; spills
  /// otherwise. Fails after Cancel().
  Status Push(std::string frame);

  /// Marks the producer done; pending Pops drain then end.
  void CloseProducer();

  /// Dequeues the next frame; nullopt when the producer closed and
  /// everything (memory + spill) is drained. Blocks otherwise.
  Result<std::optional<std::string>> Pop();

  /// Unblocks all waiters with kCancelled.
  void Cancel();

  int64_t spilled_frames() const;
  int64_t spilled_bytes() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable producer_cv_;
  std::condition_variable consumer_cv_;

  std::deque<std::string> memory_;
  size_t memory_bytes_ = 0;
  bool spilling_ = false;
  int64_t spill_written_ = 0;  // Frames appended to the spill file.
  int64_t spill_read_ = 0;     // Frames consumed from the spill file.
  int64_t spilled_bytes_ = 0;
  std::ofstream spill_out_;
  std::ifstream spill_in_;
  bool producer_closed_ = false;
  bool cancelled_ = false;

  // Shared instrument handles (resolved once in the constructor; all
  // SpillingByteQueues aggregate into the same global instruments).
  Gauge* depth_frames_;   ///< Live frames held (memory + undrained spill).
  Gauge* depth_bytes_;    ///< Live bytes held in memory.
  Counter* spill_frames_total_;
  Counter* spill_bytes_total_;
  Counter* drain_frames_total_;
  Histogram* spill_write_micros_;
  Histogram* spill_read_micros_;
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_SPILL_QUEUE_H_
