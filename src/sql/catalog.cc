#include "sql/catalog.h"

#include <unordered_set>

#include "common/string_util.h"

namespace sqlink {

namespace {

/// In-memory payload size proxy for one value (cost-model currency, not an
/// exact allocator accounting).
double ValueBytes(const Value& v) {
  if (v.is_string()) return 16.0 + static_cast<double>(v.string_value().size());
  return 16.0;
}

TableStatsPtr ComputeStats(const Table& table) {
  auto stats = std::make_shared<TableStats>();
  const size_t width =
      static_cast<size_t>(table.schema()->num_fields());
  stats->columns.resize(width);
  std::vector<std::unordered_set<size_t>> hashes(width);
  std::vector<double> nulls(width, 0);
  std::vector<double> bytes(width, 0);
  double rows = 0;
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    for (const Row& row : table.partition(p)) {
      rows += 1;
      for (size_t c = 0; c < width && c < row.size(); ++c) {
        const Value& v = row[c];
        if (v.is_null()) {
          nulls[c] += 1;
          continue;
        }
        hashes[c].insert(v.Hash());
        bytes[c] += ValueBytes(v);
      }
    }
  }
  stats->row_count = rows;
  for (size_t c = 0; c < width; ++c) {
    ColumnStats& col = stats->columns[c];
    col.distinct_values = static_cast<double>(hashes[c].size());
    col.null_fraction = rows > 0 ? nulls[c] / rows : 0;
    const double non_null = rows - nulls[c];
    col.avg_bytes = non_null > 0 ? bytes[c] / non_null : 16.0;
    stats->avg_row_bytes += col.avg_bytes;
  }
  return stats;
}

}  // namespace

Status Catalog::RegisterTable(TablePtr table) {
  const std::string key = ToLowerAscii(table->name());
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + table->name());
  }
  tables_.emplace(key, std::move(table));
  return Status::OK();
}

void Catalog::PutTable(TablePtr table) {
  const std::string key = ToLowerAscii(table->name());
  std::lock_guard<std::mutex> lock(mu_);
  tables_[key] = std::move(table);
  stats_.erase(key);
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLowerAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table: " + name);
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(ToLowerAscii(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = ToLowerAscii(name);
  stats_.erase(key);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("unknown table: " + name);
  }
  return Status::OK();
}

Result<TableStatsPtr> Catalog::GetStats(const std::string& name) const {
  const std::string key = ToLowerAscii(name);
  TablePtr table;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto cached = stats_.find(key);
    if (cached != stats_.end()) return cached->second;
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound("unknown table: " + name);
    }
    table = it->second;
  }
  // Scan outside the lock (stats computation is O(rows)); last writer wins
  // if two threads race, which is fine — both computed from live snapshots.
  TableStatsPtr stats = ComputeStats(*table);
  std::lock_guard<std::mutex> lock(mu_);
  stats_[key] = stats;
  return stats;
}

std::vector<std::string> Catalog::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) {
    names.push_back(table->name());
  }
  return names;
}

}  // namespace sqlink
