#include "stream/wire.h"

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"

namespace sqlink {

namespace {

/// Per-instrument handles resolved once (satisfying the hot-path contract:
/// no registry lock per frame).
struct WireMetrics {
  Counter* frames_sent;
  Counter* frames_received;
  Counter* bytes_sent;
  Counter* bytes_received;
  Histogram* send_micros;
  Histogram* recv_micros;

  static const WireMetrics& Get() {
    static const WireMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return WireMetrics{registry.GetCounter("stream.wire.frames_sent"),
                         registry.GetCounter("stream.wire.frames_received"),
                         registry.GetCounter("stream.wire.bytes_sent"),
                         registry.GetCounter("stream.wire.bytes_received"),
                         registry.GetHistogram("stream.wire.send_frame_micros"),
                         registry.GetHistogram("stream.wire.recv_frame_micros")};
    }();
    return metrics;
  }
};

}  // namespace

namespace {

Status SendFrameImpl(TcpSocket* socket, FrameType type,
                     std::string_view payload, uint64_t seq,
                     const TraceContext& trace);

}  // namespace

Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload) {
  return SendFrameImpl(socket, type, payload, /*seq=*/0,
                       Tracer::CurrentContext());
}

Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload,
                 const TraceContext& trace) {
  return SendFrameImpl(socket, type, payload, /*seq=*/0, trace);
}

Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload,
                 uint64_t seq) {
  return SendFrameImpl(socket, type, payload, seq, Tracer::CurrentContext());
}

namespace {

Status SendFrameImpl(TcpSocket* socket, FrameType type,
                     std::string_view payload, uint64_t seq,
                     const TraceContext& trace) {
  std::string buffer;
  buffer.reserve(kFrameHeaderBytes + payload.size());
  PutFixed32(&buffer, static_cast<uint32_t>(payload.size()));
  buffer.push_back(static_cast<char>(type));
  PutFixed64(&buffer, trace.trace_id);
  PutFixed64(&buffer, trace.span_id);
  PutFixed64(&buffer, seq);
  buffer.append(payload);
  FailpointOutcome outcome = SQLINK_FAILPOINT("stream.wire.send_frame");
  if (outcome == FailpointOutcome::kNone && type == FrameType::kData) {
    outcome = SQLINK_FAILPOINT("stream.wire.send_data");
  }
  switch (outcome) {
    case FailpointOutcome::kNone:
      break;
    case FailpointOutcome::kError:
      return Status::NetworkError("failpoint: injected frame send error");
    case FailpointOutcome::kClose: {
      // Ship only half the frame before dropping the connection, so the
      // receiver observes a mid-frame disconnect rather than a clean EOF.
      const std::string_view half(buffer.data(), buffer.size() / 2);
      (void)socket->SendAll(half);
      socket->Close();
      return Status::NetworkError("failpoint: connection dropped mid-frame");
    }
  }
  const WireMetrics& metrics = WireMetrics::Get();
  Stopwatch timer;
  const Status status = socket->SendAll(buffer);
  if (status.ok()) {
    metrics.send_micros->Record(timer.ElapsedMicros());
    metrics.frames_sent->Increment();
    metrics.bytes_sent->Add(static_cast<int64_t>(buffer.size()));
  }
  return status;
}

}  // namespace

Result<Frame> RecvFrame(TcpSocket* socket) {
  switch (SQLINK_FAILPOINT("stream.wire.recv_frame")) {
    case FailpointOutcome::kNone:
      break;
    case FailpointOutcome::kError:
      return Status::NetworkError("failpoint: injected frame recv error");
    case FailpointOutcome::kClose:
      socket->Close();
      return Status::NetworkError("failpoint: recv connection closed");
  }
  const WireMetrics& metrics = WireMetrics::Get();
  Stopwatch timer;
  std::string header;
  RETURN_IF_ERROR(socket->RecvExactly(kFrameHeaderBytes, &header));
  Decoder decoder(header);
  ASSIGN_OR_RETURN(uint32_t length, decoder.GetFixed32());
  ASSIGN_OR_RETURN(uint8_t type, decoder.GetByte());
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  ASSIGN_OR_RETURN(frame.trace.trace_id, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame.trace.span_id, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame.seq, decoder.GetFixed64());
  if (length > 0) {
    RETURN_IF_ERROR(socket->RecvExactly(length, &frame.payload));
  }
  metrics.recv_micros->Record(timer.ElapsedMicros());
  metrics.frames_received->Increment();
  metrics.bytes_received->Add(
      static_cast<int64_t>(kFrameHeaderBytes + frame.payload.size()));
  return frame;
}

Result<bool> ExtractFrame(std::string* buffer, Frame* frame) {
  if (buffer->size() < kFrameHeaderBytes) return false;
  Decoder decoder(*buffer);
  ASSIGN_OR_RETURN(uint32_t length, decoder.GetFixed32());
  ASSIGN_OR_RETURN(uint8_t type, decoder.GetByte());
  if (buffer->size() < kFrameHeaderBytes + length) return false;
  frame->type = static_cast<FrameType>(type);
  ASSIGN_OR_RETURN(frame->trace.trace_id, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame->trace.span_id, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame->seq, decoder.GetFixed64());
  frame->payload.assign(*buffer, kFrameHeaderBytes, length);
  buffer->erase(0, kFrameHeaderBytes + length);
  return true;
}

namespace {
/// Marker byte so a typed-status payload is distinguishable from the legacy
/// free-text error payloads still emitted by older call sites.
constexpr uint8_t kStatusPayloadTag = 0xF5;
}  // namespace

std::string EncodeStatus(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(kStatusPayloadTag));
  PutVarint64(&out, static_cast<uint64_t>(status.code()));
  PutLengthPrefixed(&out, status.message());
  return out;
}

Status DecodeStatusPayload(std::string_view payload) {
  auto fallback = [&] {
    return Status::NetworkError("peer failed: " + std::string(payload));
  };
  if (payload.empty() ||
      static_cast<uint8_t>(payload.front()) != kStatusPayloadTag) {
    return fallback();
  }
  Decoder decoder(payload.substr(1));
  auto code = decoder.GetVarint64();
  if (!code.ok() || *code == 0 ||
      *code > static_cast<uint64_t>(StatusCode::kParseError)) {
    return fallback();
  }
  auto message = decoder.GetLengthPrefixed();
  if (!message.ok()) return fallback();
  return Status(static_cast<StatusCode>(*code), std::string(*message));
}

void EncodeSchema(const Schema& schema, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    PutLengthPrefixed(out, field.name);
    out->push_back(static_cast<char>(field.type));
  }
}

Result<SchemaPtr> DecodeSchema(Decoder* decoder) {
  ASSIGN_OR_RETURN(uint64_t count, decoder->GetVarint64());
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(std::string_view name, decoder->GetLengthPrefixed());
    ASSIGN_OR_RETURN(uint8_t type, decoder->GetByte());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::DataLoss("bad data type in schema");
    }
    fields.push_back(Field{std::string(name), static_cast<DataType>(type)});
  }
  return Schema::Make(std::move(fields));
}

std::string RegisterSqlMessage::Encode() const {
  std::string out;
  PutVarint64Signed(&out, worker_id);
  PutVarint64Signed(&out, num_workers);
  PutLengthPrefixed(&out, host);
  PutVarint64Signed(&out, port);
  PutLengthPrefixed(&out, command);
  PutVarint64(&out, args.size());
  for (const std::string& arg : args) PutLengthPrefixed(&out, arg);
  EncodeSchema(*schema, &out);
  return out;
}

Result<RegisterSqlMessage> RegisterSqlMessage::Decode(
    std::string_view payload) {
  Decoder decoder(payload);
  RegisterSqlMessage msg;
  ASSIGN_OR_RETURN(int64_t worker, decoder.GetVarint64Signed());
  msg.worker_id = static_cast<int>(worker);
  ASSIGN_OR_RETURN(int64_t total, decoder.GetVarint64Signed());
  msg.num_workers = static_cast<int>(total);
  ASSIGN_OR_RETURN(std::string_view host, decoder.GetLengthPrefixed());
  msg.host = std::string(host);
  ASSIGN_OR_RETURN(int64_t port, decoder.GetVarint64Signed());
  msg.port = static_cast<int>(port);
  ASSIGN_OR_RETURN(std::string_view command, decoder.GetLengthPrefixed());
  msg.command = std::string(command);
  ASSIGN_OR_RETURN(uint64_t num_args, decoder.GetVarint64());
  for (uint64_t i = 0; i < num_args; ++i) {
    ASSIGN_OR_RETURN(std::string_view arg, decoder.GetLengthPrefixed());
    msg.args.push_back(std::string(arg));
  }
  ASSIGN_OR_RETURN(msg.schema, DecodeSchema(&decoder));
  return msg;
}

std::string SplitsMessage::Encode() const {
  std::string out;
  EncodeSchema(*schema, &out);
  PutVarint64(&out, splits.size());
  for (const StreamSplitInfo& split : splits) {
    PutVarint64Signed(&out, split.split_id);
    PutVarint64Signed(&out, split.sql_worker);
    PutLengthPrefixed(&out, split.host);
    PutVarint64Signed(&out, split.port);
    PutVarint64Signed(&out, split.epoch);
  }
  return out;
}

Result<SplitsMessage> SplitsMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  SplitsMessage msg;
  ASSIGN_OR_RETURN(msg.schema, DecodeSchema(&decoder));
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  for (uint64_t i = 0; i < count; ++i) {
    StreamSplitInfo split;
    ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
    split.split_id = static_cast<int>(id);
    ASSIGN_OR_RETURN(int64_t worker, decoder.GetVarint64Signed());
    split.sql_worker = static_cast<int>(worker);
    ASSIGN_OR_RETURN(std::string_view host, decoder.GetLengthPrefixed());
    split.host = std::string(host);
    ASSIGN_OR_RETURN(int64_t port, decoder.GetVarint64Signed());
    split.port = static_cast<int>(port);
    ASSIGN_OR_RETURN(split.epoch, decoder.GetVarint64Signed());
    msg.splits.push_back(std::move(split));
  }
  return msg;
}

std::string RegisterMlMessage::Encode() const {
  std::string out;
  PutVarint64Signed(&out, split_id);
  return out;
}

Result<RegisterMlMessage> RegisterMlMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  RegisterMlMessage msg;
  ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
  msg.split_id = static_cast<int>(id);
  return msg;
}

std::string MatchMessage::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, host);
  PutVarint64Signed(&out, port);
  return out;
}

Result<MatchMessage> MatchMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  MatchMessage msg;
  ASSIGN_OR_RETURN(std::string_view host, decoder.GetLengthPrefixed());
  msg.host = std::string(host);
  ASSIGN_OR_RETURN(int64_t port, decoder.GetVarint64Signed());
  msg.port = static_cast<int>(port);
  return msg;
}

std::string HelloMessage::Encode() const {
  std::string out;
  PutVarint64Signed(&out, split_id);
  out.push_back(restart ? 1 : 0);
  PutVarint64Signed(&out, resume_seq);
  return out;
}

Result<HelloMessage> HelloMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  HelloMessage msg;
  ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
  msg.split_id = static_cast<int>(id);
  ASSIGN_OR_RETURN(uint8_t restart, decoder.GetByte());
  msg.restart = restart != 0;
  ASSIGN_OR_RETURN(msg.resume_seq, decoder.GetVarint64Signed());
  return msg;
}

std::string HeartbeatMessage::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(role));
  PutVarint64Signed(&out, id);
  PutVarint64Signed(&out, epoch);
  PutVarint64(&out, applied_seq);
  out.push_back(static_cast<char>(bye));
  return out;
}

Result<HeartbeatMessage> HeartbeatMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  HeartbeatMessage msg;
  ASSIGN_OR_RETURN(msg.role, decoder.GetByte());
  ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
  msg.id = static_cast<int>(id);
  ASSIGN_OR_RETURN(msg.epoch, decoder.GetVarint64Signed());
  ASSIGN_OR_RETURN(msg.applied_seq, decoder.GetVarint64());
  ASSIGN_OR_RETURN(msg.bye, decoder.GetByte());
  return msg;
}

std::string ResumeMessage::Encode() const {
  std::string out;
  PutVarint64(&out, resume_seq);
  PutVarint64(&out, resume_rows);
  return out;
}

Result<ResumeMessage> ResumeMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  ResumeMessage msg;
  ASSIGN_OR_RETURN(msg.resume_seq, decoder.GetVarint64());
  ASSIGN_OR_RETURN(msg.resume_rows, decoder.GetVarint64());
  return msg;
}

std::string SplitGrantMessage::Encode() const {
  std::string out;
  out.push_back(granted ? 1 : 0);
  if (granted) {
    PutVarint64Signed(&out, split.split_id);
    PutVarint64Signed(&out, split.sql_worker);
    PutLengthPrefixed(&out, split.host);
    PutVarint64Signed(&out, split.port);
    PutVarint64Signed(&out, split.epoch);
  }
  return out;
}

Result<SplitGrantMessage> SplitGrantMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  SplitGrantMessage msg;
  ASSIGN_OR_RETURN(uint8_t granted, decoder.GetByte());
  msg.granted = granted != 0;
  if (msg.granted) {
    ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
    msg.split.split_id = static_cast<int>(id);
    ASSIGN_OR_RETURN(int64_t worker, decoder.GetVarint64Signed());
    msg.split.sql_worker = static_cast<int>(worker);
    ASSIGN_OR_RETURN(std::string_view host, decoder.GetLengthPrefixed());
    msg.split.host = std::string(host);
    ASSIGN_OR_RETURN(int64_t port, decoder.GetVarint64Signed());
    msg.split.port = static_cast<int>(port);
    ASSIGN_OR_RETURN(msg.split.epoch, decoder.GetVarint64Signed());
  }
  return msg;
}

std::string CompleteSplitMessage::Encode() const {
  std::string out;
  PutVarint64Signed(&out, split_id);
  PutVarint64Signed(&out, epoch);
  PutVarint64(&out, rows);
  return out;
}

Result<CompleteSplitMessage> CompleteSplitMessage::Decode(
    std::string_view payload) {
  Decoder decoder(payload);
  CompleteSplitMessage msg;
  ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
  msg.split_id = static_cast<int>(id);
  ASSIGN_OR_RETURN(msg.epoch, decoder.GetVarint64Signed());
  ASSIGN_OR_RETURN(msg.rows, decoder.GetVarint64());
  return msg;
}

}  // namespace sqlink
