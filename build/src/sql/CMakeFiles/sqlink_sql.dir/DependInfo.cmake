
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/sql/CMakeFiles/sqlink_sql.dir/ast.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/ast.cc.o.d"
  "/root/repo/src/sql/catalog.cc" "src/sql/CMakeFiles/sqlink_sql.dir/catalog.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/catalog.cc.o.d"
  "/root/repo/src/sql/engine.cc" "src/sql/CMakeFiles/sqlink_sql.dir/engine.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/engine.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/sqlink_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/expr.cc" "src/sql/CMakeFiles/sqlink_sql.dir/expr.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/expr.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/sqlink_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/sqlink_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/plan.cc" "src/sql/CMakeFiles/sqlink_sql.dir/plan.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/plan.cc.o.d"
  "/root/repo/src/sql/planner.cc" "src/sql/CMakeFiles/sqlink_sql.dir/planner.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/planner.cc.o.d"
  "/root/repo/src/sql/table_udf.cc" "src/sql/CMakeFiles/sqlink_sql.dir/table_udf.cc.o" "gcc" "src/sql/CMakeFiles/sqlink_sql.dir/table_udf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/sqlink_table.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sqlink_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
