#include "sql/batch_iterator.h"

#include "common/status_macros.h"

namespace sqlink {

Result<bool> RowVectorBatchIterator::Next(ColumnBatch* out) {
  const size_t total = rows_->size();
  if (pos_ >= total) return false;
  const size_t take = std::min(kSqlBatchRows, total - pos_);
  out->Reset(schema_);
  out->Reserve(take);
  for (size_t i = 0; i < take; ++i) {
    RETURN_IF_ERROR(out->AppendRow((*rows_)[pos_ + i]));
  }
  pos_ += take;
  return true;
}

Result<bool> BatchToRowIterator::Next(Row* row) {
  while (pos_ >= batch_.num_rows()) {
    if (done_) return false;
    ASSIGN_OR_RETURN(bool has, child_->Next(&batch_));
    if (!has) {
      done_ = true;
      return false;
    }
    pos_ = 0;
  }
  batch_.EmitRow(pos_++, row);
  return true;
}

Result<bool> RowToBatchIterator::Next(ColumnBatch* out) {
  if (done_) return false;
  out->Reset(schema_);
  Row row;
  while (out->num_rows() < kSqlBatchRows) {
    ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) {
      done_ = true;
      break;
    }
    RETURN_IF_ERROR(out->AppendRow(row));
  }
  return out->num_rows() > 0;
}

}  // namespace sqlink
