#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/metrics.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace sqlink::ml {

int KMeansModel::Predict(const DenseVector& point) const {
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.size(); ++c) {
    const double d = SquaredDistance(point, centers[c]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

Result<KMeansModel> KMeans::Train(const Dataset& data,
                                  const KMeansOptions& options) {
  const size_t total = data.TotalPoints();
  if (total == 0) {
    return Status::InvalidArgument("cannot cluster an empty dataset");
  }
  if (options.k <= 0 || static_cast<size_t>(options.k) > total) {
    return Status::InvalidArgument("invalid k for dataset size");
  }
  const size_t k = static_cast<size_t>(options.k);
  const size_t dim = data.dimension();
  const size_t num_parts = data.num_partitions();

  // Seed centers: sample k distinct point indices.
  KMeansModel model;
  {
    Random rng(options.seed);
    std::vector<size_t> chosen;
    while (chosen.size() < k) {
      size_t index = rng.Uniform(total);
      bool dup = false;
      for (size_t c : chosen) dup = dup || c == index;
      if (!dup) chosen.push_back(index);
    }
    const auto all = data.Gather();  // Seeding only; iterations stay parallel.
    for (size_t c : chosen) model.centers.push_back(all[c].features);
  }

  struct CenterAccum {
    std::vector<DenseVector> sums;
    std::vector<size_t> counts;
    double cost = 0;
  };

  TraceSpan train_span("ml.train.kmeans");
  train_span.AddAttribute("k", options.k);
  train_span.AddAttribute("partitions", static_cast<int64_t>(num_parts));
  Histogram* const iteration_micros =
      MetricsRegistry::Global().GetHistogram("ml.train.iteration_micros");
  Counter* const iterations_run =
      MetricsRegistry::Global().GetCounter("ml.train.iterations");

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Stopwatch iter_timer;
    std::vector<CenterAccum> accums(num_parts);
    ParallelFor(num_parts, [&](size_t p) {
      CenterAccum& accum = accums[p];
      accum.sums.assign(k, DenseVector(dim, 0.0));
      accum.counts.assign(k, 0);
      for (const LabeledPoint& point : data.partitions()[p]) {
        const int c = model.Predict(point.features);
        Axpy(1.0, point.features, &accum.sums[static_cast<size_t>(c)]);
        ++accum.counts[static_cast<size_t>(c)];
        accum.cost += SquaredDistance(point.features,
                                      model.centers[static_cast<size_t>(c)]);
      }
    });

    std::vector<DenseVector> sums(k, DenseVector(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    model.cost = 0;
    for (const CenterAccum& accum : accums) {
      for (size_t c = 0; c < k; ++c) {
        Axpy(1.0, accum.sums[c], &sums[c]);
        counts[c] += accum.counts[c];
      }
      model.cost += accum.cost;
    }

    double movement = 0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Empty cluster keeps its center.
      DenseVector new_center = sums[c];
      Scale(1.0 / static_cast<double>(counts[c]), &new_center);
      movement += SquaredDistance(new_center, model.centers[c]);
      model.centers[c] = std::move(new_center);
    }
    iteration_micros->Record(iter_timer.ElapsedMicros());
    iterations_run->Increment();
    if (movement < options.tolerance) break;
  }
  return model;
}

}  // namespace sqlink::ml
