#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "sql/engine.h"
#include "stream/coordinator.h"
#include "stream/replay_window.h"
#include "stream/socket.h"
#include "stream/spill_queue.h"
#include "stream/streaming_transfer.h"
#include "stream/wire.h"

namespace sqlink {
namespace {

// --- Sockets and wire format ---

TEST(SocketTest, RoundTripOverLoopback) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    std::string data;
    ASSERT_TRUE(conn->RecvExactly(5, &data).ok());
    EXPECT_EQ(data, "hello");
    ASSERT_TRUE(conn->SendAll("world!").ok());
  });
  auto client = TcpConnect("localhost", listener->port());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->SendAll("hello").ok());
  std::string reply;
  ASSERT_TRUE(client->RecvExactly(6, &reply).ok());
  EXPECT_EQ(reply, "world!");
  server.join();
}

TEST(SocketTest, NodeHostnamesResolveToLoopback) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] { (void)listener->Accept(); });
  auto client = TcpConnect("node2", listener->port());
  EXPECT_TRUE(client.ok()) << client.status();
  server.join();
}

TEST(SocketTest, RecvOnClosedPeerReportsClosed) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    // Close immediately.
  });
  auto client = TcpConnect("localhost", listener->port());
  ASSERT_TRUE(client.ok());
  server.join();
  std::string data;
  auto status = client->RecvExactly(1, &data);
  EXPECT_TRUE(status.IsNetworkError());
}

TEST(WireTest, FrameRoundTrip) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = RecvFrame(&*conn);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, FrameType::kData);
    EXPECT_EQ(frame->payload, "payload-bytes");
    ASSERT_TRUE(SendFrame(&*conn, FrameType::kEnd, "").ok());
  });
  auto client = TcpConnect("localhost", listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(SendFrame(&*client, FrameType::kData, "payload-bytes").ok());
  auto end = RecvFrame(&*client);
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end->type, FrameType::kEnd);
  EXPECT_TRUE(end->payload.empty());
  server.join();
}

TEST(WireTest, SchemaSerializationRoundTrip) {
  Schema schema({{"age", DataType::kInt64},
                 {"gender", DataType::kString},
                 {"amount", DataType::kDouble},
                 {"flag", DataType::kBool}});
  std::string encoded;
  EncodeSchema(schema, &encoded);
  Decoder decoder(encoded);
  auto decoded = DecodeSchema(&decoder);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(**decoded, schema);
}

TEST(WireTest, ControlMessagesRoundTrip) {
  RegisterSqlMessage reg;
  reg.worker_id = 2;
  reg.num_workers = 4;
  reg.host = "node2";
  reg.port = 12345;
  reg.command = "svm";
  reg.args = {"--iterations", "10"};
  reg.schema = Schema::Make({{"x", DataType::kDouble}});
  auto reg2 = RegisterSqlMessage::Decode(reg.Encode());
  ASSERT_TRUE(reg2.ok());
  EXPECT_EQ(reg2->worker_id, 2);
  EXPECT_EQ(reg2->args, reg.args);
  EXPECT_EQ(*reg2->schema, *reg.schema);

  SplitsMessage splits;
  splits.schema = reg.schema;
  splits.splits = {{0, 0, "node0", 1111}, {1, 0, "node0", 1111},
                   {2, 1, "node1", 2222}};
  auto splits2 = SplitsMessage::Decode(splits.Encode());
  ASSERT_TRUE(splits2.ok());
  ASSERT_EQ(splits2->splits.size(), 3u);
  EXPECT_EQ(splits2->splits[2].host, "node1");

  HelloMessage hello{7, true};
  auto hello2 = HelloMessage::Decode(hello.Encode());
  ASSERT_TRUE(hello2.ok());
  EXPECT_EQ(hello2->split_id, 7);
  EXPECT_TRUE(hello2->restart);
}

// --- Spill queue ---

class SpillQueueTest : public ::testing::Test {
 protected:
  ScopedTempDir temp_{"spill_test"};
};

TEST_F(SpillQueueTest, FifoWithinMemory) {
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 1 << 20;
  options.spill_enabled = false;
  SpillingByteQueue queue(options);
  ASSERT_TRUE(queue.Push("a").ok());
  ASSERT_TRUE(queue.Push("bb").ok());
  queue.CloseProducer();
  EXPECT_EQ(**queue.Pop(), "a");
  EXPECT_EQ(**queue.Pop(), "bb");
  EXPECT_FALSE(queue.Pop()->has_value());
}

TEST_F(SpillQueueTest, SpillsWhenFullAndPreservesOrder) {
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 32;
  options.spill_enabled = true;
  options.spill_path = temp_.path() + "/spill";
  SpillingByteQueue queue(options);
  // Fill memory then overflow to disk with nobody consuming.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(queue.Push("frame-" + std::to_string(i)).ok());
  }
  EXPECT_GT(queue.spilled_frames(), 0);
  queue.CloseProducer();
  for (int i = 0; i < 50; ++i) {
    auto frame = queue.Pop();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame->has_value());
    EXPECT_EQ(**frame, "frame-" + std::to_string(i));
  }
  EXPECT_FALSE(queue.Pop()->has_value());
}

TEST_F(SpillQueueTest, ResumesMemoryAfterSpillDrained) {
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 16;
  options.spill_enabled = true;
  options.spill_path = temp_.path() + "/spill2";
  SpillingByteQueue queue(options);
  ASSERT_TRUE(queue.Push(std::string(10, 'a')).ok());
  ASSERT_TRUE(queue.Push(std::string(10, 'b')).ok());  // Spills.
  EXPECT_EQ(queue.spilled_frames(), 1);
  EXPECT_EQ((*queue.Pop())->front(), 'a');
  EXPECT_EQ((*queue.Pop())->front(), 'b');  // From disk.
  // Spill drained: memory path is used again.
  ASSERT_TRUE(queue.Push(std::string(10, 'c')).ok());
  EXPECT_EQ(queue.spilled_frames(), 1);
  EXPECT_EQ((*queue.Pop())->front(), 'c');
}

TEST_F(SpillQueueTest, BackpressureBlocksProducerUntilPop) {
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 8;
  options.spill_enabled = false;
  SpillingByteQueue queue(options);
  ASSERT_TRUE(queue.Push(std::string(8, 'x')).ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(std::string(8, 'y')).ok());
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());  // Blocked: no room, no spill.
  EXPECT_TRUE(queue.Pop()->has_value());
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST_F(SpillQueueTest, CancelUnblocksBothSides) {
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 4;
  options.spill_enabled = false;
  SpillingByteQueue queue(options);
  std::thread consumer([&] {
    auto result = queue.Pop();
    EXPECT_TRUE(result.status().IsCancelled());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Cancel();
  consumer.join();
  EXPECT_TRUE(queue.Push("x").IsCancelled());
}

TEST_F(SpillQueueTest, ConcurrentProducerConsumerWithSpill) {
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 64;
  options.spill_enabled = true;
  options.spill_path = temp_.path() + "/spill3";
  SpillingByteQueue queue(options);
  constexpr int kFrames = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(queue.Push("frame-" + std::to_string(i)).ok());
    }
    queue.CloseProducer();
  });
  int count = 0;
  for (;;) {
    auto frame = queue.Pop();
    ASSERT_TRUE(frame.ok());
    if (!frame->has_value()) break;
    EXPECT_EQ(**frame, "frame-" + std::to_string(count));
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kFrames);
}

TEST_F(SpillQueueTest, AbortLeavesNoSpillFilesBehind) {
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 32;
  options.spill_enabled = true;
  options.spill_path = temp_.path() + "/abort_spill";
  {
    SpillingByteQueue queue(options);
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(queue.Push(std::string(24, 'x')).ok());
    }
    ASSERT_GT(queue.spilled_frames(), 0);
    EXPECT_TRUE(std::filesystem::exists(options.spill_path + ".spill"));
    // Abort mid-drain: nothing was ever popped, yet Cancel must delete the
    // on-disk backlog immediately, not wait for process exit.
    queue.Cancel();
    EXPECT_FALSE(std::filesystem::exists(options.spill_path + ".spill"));
  }
  EXPECT_TRUE(std::filesystem::is_empty(temp_.path()));
}

TEST_F(SpillQueueTest, DestructorLeavesNoSpillFilesBehind) {
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 32;
  options.spill_enabled = true;
  options.spill_path = temp_.path() + "/drop_spill";
  {
    SpillingByteQueue queue(options);
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(queue.Push(std::string(24, 'x')).ok());
    }
    ASSERT_GT(queue.spilled_frames(), 0);
    // No Cancel, no drain: destruction alone must clean the scratch dir.
  }
  EXPECT_TRUE(std::filesystem::is_empty(temp_.path()));
}

// --- Replay window ---

class ReplayWindowTest : public ::testing::Test {
 protected:
  ScopedTempDir temp_{"replay_window_test"};
};

TEST_F(ReplayWindowTest, ReplaysUnackedSuffixAcrossSpill) {
  ReplayWindow::Options options;
  options.memory_capacity_bytes = 16;  // Force the older frames to disk.
  options.spill_enabled = true;
  options.spill_path = temp_.path() + "/window";
  ReplayWindow window(options);
  for (uint64_t seq = 1; seq <= 6; ++seq) {
    ASSERT_TRUE(
        window.Append(seq, /*rows=*/seq, "frame" + std::to_string(seq)).ok());
  }
  EXPECT_GT(window.spilled_frames(), 0);
  window.Ack(2);
  EXPECT_EQ(window.acked_seq(), 2u);
  EXPECT_EQ(*window.RowsThrough(2), 3u);   // 1 + 2
  EXPECT_EQ(*window.RowsThrough(6), 21u);  // 1 + ... + 6
  // A reader resuming from frame 3 gets exactly 4, 5, 6 — in order, with
  // content intact whether the frame lived in memory or on disk.
  std::vector<uint64_t> seqs;
  std::vector<std::string> frames;
  ASSERT_TRUE(window
                  .Replay(3,
                          [&](uint64_t seq, uint64_t rows,
                              const std::string& frame) {
                            (void)rows;
                            seqs.push_back(seq);
                            frames.push_back(frame);
                            return Status::OK();
                          })
                  .ok());
  EXPECT_EQ(seqs, (std::vector<uint64_t>{4, 5, 6}));
  EXPECT_EQ(frames, (std::vector<std::string>{"frame4", "frame5", "frame6"}));
  window.Ack(6);
  EXPECT_EQ(window.memory_bytes(), 0u);
}

TEST_F(ReplayWindowTest, DestructionRemovesSpillFile) {
  {
    ReplayWindow::Options options;
    options.memory_capacity_bytes = 8;
    options.spill_enabled = true;
    options.spill_path = temp_.path() + "/window";
    ReplayWindow window(options);
    for (uint64_t seq = 1; seq <= 8; ++seq) {
      ASSERT_TRUE(window.Append(seq, 1, std::string(64, 'w')).ok());
    }
    ASSERT_GT(window.spilled_frames(), 0);
    // Never acked, never replayed: an aborted transfer drops the window.
  }
  EXPECT_TRUE(std::filesystem::is_empty(temp_.path()));
}

// --- End-to-end streaming transfer ---

class StreamingTransferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("stream_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);

    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"feature", DataType::kDouble},
                                {"label", DataType::kInt64}});
    auto table = engine_->MakeTable("points", schema);
    Random rng(23);
    for (int64_t i = 0; i < 1000; ++i) {
      table->AppendRow(
          static_cast<size_t>(i) % 4,
          Row{Value::Int64(i), Value::Double(rng.NextDouble()),
              Value::Int64(i % 2)});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(table).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(StreamingTransferTest, DeliversEveryRowExactlyOnce) {
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  EXPECT_EQ(result->rows_sent, 1000);
  EXPECT_GT(result->bytes_sent, 0);
  EXPECT_EQ(result->stats.num_splits, 4);  // k=1, n=4.
  std::set<int64_t> ids;
  for (const auto& partition : result->dataset.partitions) {
    for (const Row& row : partition) {
      EXPECT_TRUE(ids.insert(row[0].int64_value()).second);
    }
  }
  EXPECT_EQ(ids.size(), 1000u);
  // Schema crossed the wire.
  EXPECT_EQ(result->dataset.schema->ToString(),
            "id:INT64, feature:DOUBLE, label:INT64");
}

TEST_F(StreamingTransferTest, FilteredQueryStreamsFilteredRows) {
  auto result = StreamingTransfer::Run(
      engine_.get(), "SELECT id, label FROM points WHERE id < 100");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 100u);
  EXPECT_EQ(result->dataset.schema->num_fields(), 2);
}

TEST_F(StreamingTransferTest, MultipleSplitsPerWorker) {
  StreamTransferOptions options;
  options.splits_per_worker = 3;  // m = 12 ML workers.
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.num_splits, 12);
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  // Round-robin keeps split sizes balanced.
  for (const auto& partition : result->dataset.partitions) {
    EXPECT_GT(partition.size(), 0u);
  }
}

TEST_F(StreamingTransferTest, TinyBufferForcesManyFrames) {
  StreamTransferOptions options;
  options.sink.send_buffer_bytes = 64;
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
}

TEST_F(StreamingTransferTest, ResilientModeDeliversSameData) {
  StreamTransferOptions options;
  options.sink.resilient = true;
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
}

TEST_F(StreamingTransferTest, RecoversFromInjectedFailure) {
  StreamTransferOptions options;
  options.sink.resilient = true;  // SQL side retains a replayable log.
  options.reader.recovery_enabled = true;
  // Split 1's reader drops its connection once, after 50 delivered rows.
  ScopedFailpoint fault("stream.reader.row.split1", "after(49):error(1)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Despite the mid-stream failure, exactly-once delivery holds.
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  std::set<int64_t> ids;
  for (const auto& partition : result->dataset.partitions) {
    for (const Row& row : partition) {
      EXPECT_TRUE(ids.insert(row[0].int64_value()).second)
          << "duplicate row " << row[0].int64_value();
    }
  }
  EXPECT_EQ(ids.size(), 1000u);
  EXPECT_GT(engine_->metrics()->Get("stream.reconnects"), 0);
  EXPECT_EQ(fault.fires(), 1);
  EXPECT_EQ(MetricsRegistry::Global().Get(
                "failpoint.stream.reader.row.split1.fired"),
            1);
}

TEST_F(StreamingTransferTest, RecoversWithMultipleSplitsPerWorker) {
  // k = 2 and a failure on a non-first split of a worker: the slot routing
  // (split_id mod k) must deliver the reconnect to the right sender.
  StreamTransferOptions options;
  options.splits_per_worker = 2;
  options.sink.resilient = true;
  options.reader.recovery_enabled = true;
  // Split 5 = worker 2, slot 1: fails once after 30 delivered rows.
  ScopedFailpoint fault("stream.reader.row.split5", "after(29):error(1)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  std::set<int64_t> ids;
  for (const auto& partition : result->dataset.partitions) {
    for (const Row& row : partition) {
      EXPECT_TRUE(ids.insert(row[0].int64_value()).second);
    }
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST_F(StreamingTransferTest, ReaderGivesUpAfterMaxReconnects) {
  StreamTransferOptions options;
  options.sink.resilient = true;
  options.sink.reconnect_timeout_ms = 300;  // Keep the failing run fast.
  options.reader.recovery_enabled = true;
  options.reader.max_reconnects = 0;  // Recovery enabled but exhausted.
  ScopedFailpoint fault("stream.reader.row.split0", "after(9):error(1)");
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  EXPECT_FALSE(result.ok());
}

TEST_F(StreamingTransferTest, FailureWithoutRecoveryFailsThePipeline) {
  StreamTransferOptions options;
  options.reader.recovery_enabled = false;
  ScopedFailpoint fault("stream.reader.row.split0", "after(9):error(1)");
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  EXPECT_FALSE(result.ok());
}

TEST_F(StreamingTransferTest, BadQuerySurfacesSqlError) {
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT nope FROM missing");
  EXPECT_FALSE(result.ok());
}

TEST_F(StreamingTransferTest, SinkSqlRendersRoundTrippableQuery) {
  StreamSinkOptions sink;
  const std::string sql = StreamingTransfer::BuildSinkSql(
      "SELECT * FROM points", "localhost", 9999, "svm", sink);
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << sql << ": " << stmt.status();
  EXPECT_EQ(stmt->from[0].kind, TableRef::Kind::kTableFunction);
  EXPECT_EQ(stmt->from[0].name, "sql_stream_sink");
}

TEST_F(StreamingTransferTest, OneTraceCoversSinkCoordinatorReaderAndIngest) {
  Tracer::Global().Reset();
  Tracer::Global().set_sample_probability(1.0);
  Tracer::Global().set_enabled(true);
  auto result = StreamingTransfer::Run(engine_.get(), "SELECT * FROM points");
  Tracer::Global().set_enabled(false);
  ASSERT_TRUE(result.ok()) << result.status();

  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  auto find = [&spans](const std::string& name) -> const SpanRecord* {
    for (const SpanRecord& span : spans) {
      if (span.name == name) return &span;
    }
    return nullptr;
  };
  const SpanRecord* root = find("stream.transfer");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_span_id, 0u);

  // Every stage of the pipeline — SQL executor, sink UDF, coordinator
  // handlers, ML split fetch, per-connection reader streams, ML ingest —
  // lands in the root's trace: the end-to-end invariant the wire-header
  // propagation plus ambient context exist for.
  for (const char* name :
       {"sql.execute", "sink.partition", "sink.register", "sink.send",
        "coordinator.register_sql", "coordinator.get_splits",
        "reader.get_splits", "reader.stream", "ml.ingest",
        "ml.ingest.split"}) {
    const SpanRecord* span = find(name);
    ASSERT_NE(span, nullptr) << name << " span missing";
    EXPECT_EQ(span->trace_id, root->trace_id) << name;
    EXPECT_NE(span->parent_span_id, 0u) << name;
    EXPECT_FALSE(span->error) << name;
  }

  // Cross-wire link: each reader.stream span's parent is the sink-side span
  // that sent the schema frame (a span of the same trace, recorded on the
  // SQL-worker thread).
  const SpanRecord* reader_stream = find("reader.stream");
  bool parent_found = false;
  for (const SpanRecord& span : spans) {
    if (span.span_id == reader_stream->parent_span_id) {
      parent_found = true;
      EXPECT_EQ(span.trace_id, root->trace_id);
    }
  }
  EXPECT_TRUE(parent_found) << "reader.stream parent span not recorded";

  // Thread-crossing link: per-split ingest spans are children of ml.ingest.
  const SpanRecord* ingest = find("ml.ingest");
  int split_spans = 0;
  for (const SpanRecord& span : spans) {
    if (span.name != "ml.ingest.split") continue;
    ++split_spans;
    EXPECT_EQ(span.parent_span_id, ingest->span_id);
  }
  EXPECT_EQ(split_spans, 4);  // One per split (k=1, n=4).
}

// --- Coordinator-level behaviours ---

TEST(CoordinatorTest, SplitsGroupedPerSqlWorker) {
  StreamCoordinator::Options options;
  options.splits_per_worker = 2;
  auto coordinator = StreamCoordinator::Start(std::move(options));
  ASSERT_TRUE(coordinator.ok());

  auto schema = Schema::Make({{"x", DataType::kInt64}});
  // Register two fake SQL workers.
  for (int w = 0; w < 2; ++w) {
    auto control = TcpConnect("localhost", (*coordinator)->port());
    ASSERT_TRUE(control.ok());
    RegisterSqlMessage reg;
    reg.worker_id = w;
    reg.num_workers = 2;
    reg.host = "node" + std::to_string(w);
    reg.port = 5000 + w;
    reg.command = "test";
    reg.schema = schema;
    ASSERT_TRUE(
        SendFrame(&*control, FrameType::kRegisterSql, reg.Encode()).ok());
    auto ack = RecvFrame(&*control);
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->type, FrameType::kAck);
  }
  // Fetch splits like an ML job would.
  auto control = TcpConnect("localhost", (*coordinator)->port());
  ASSERT_TRUE(control.ok());
  ASSERT_TRUE(SendFrame(&*control, FrameType::kGetSplits, "").ok());
  auto frame = RecvFrame(&*control);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, FrameType::kSplits);
  auto splits = SplitsMessage::Decode(frame->payload);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->splits.size(), 4u);  // m = n*k = 2*2.
  // Grouped: splits 0,1 -> worker 0; splits 2,3 -> worker 1.
  EXPECT_EQ(splits->splits[0].sql_worker, 0);
  EXPECT_EQ(splits->splits[1].sql_worker, 0);
  EXPECT_EQ(splits->splits[2].sql_worker, 1);
  EXPECT_EQ(splits->splits[3].sql_worker, 1);
  // Locality: each split advertises its SQL worker's host.
  EXPECT_EQ(splits->splits[0].host, "node0");
  EXPECT_EQ(splits->splits[3].host, "node1");
  EXPECT_EQ((*coordinator)->registered_sql_workers(), 2);
  (*coordinator)->Stop();
}

TEST(CoordinatorTest, MatchmakingReturnsSqlEndpoint) {
  StreamCoordinator::Options options;
  auto coordinator = StreamCoordinator::Start(std::move(options));
  ASSERT_TRUE(coordinator.ok());
  {
    auto control = TcpConnect("localhost", (*coordinator)->port());
    ASSERT_TRUE(control.ok());
    RegisterSqlMessage reg;
    reg.worker_id = 0;
    reg.num_workers = 1;
    reg.host = "node0";
    reg.port = 7777;
    reg.command = "test";
    reg.schema = Schema::Make({{"x", DataType::kInt64}});
    ASSERT_TRUE(
        SendFrame(&*control, FrameType::kRegisterSql, reg.Encode()).ok());
    ASSERT_TRUE(RecvFrame(&*control).ok());
  }
  auto control = TcpConnect("localhost", (*coordinator)->port());
  ASSERT_TRUE(control.ok());
  RegisterMlMessage reg_ml;
  reg_ml.split_id = 0;
  ASSERT_TRUE(
      SendFrame(&*control, FrameType::kRegisterMl, reg_ml.Encode()).ok());
  auto match_frame = RecvFrame(&*control);
  ASSERT_TRUE(match_frame.ok());
  ASSERT_EQ(match_frame->type, FrameType::kMatch);
  auto match = MatchMessage::Decode(match_frame->payload);
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->host, "node0");
  EXPECT_EQ(match->port, 7777);
  EXPECT_EQ((*coordinator)->registered_ml_workers(), 1);
}

TEST(CoordinatorTest, CheckpointResumeServesMatchmaking) {
  // §6: the coordinator itself must be resilient (the paper suggests
  // ZooKeeper). Simulate a failover: checkpoint after SQL registration,
  // kill the coordinator, resume a replacement from the checkpoint, and
  // verify an ML worker can still register and be matched.
  std::string checkpoint;
  {
    StreamCoordinator::Options options;
    options.splits_per_worker = 2;
    auto coordinator = StreamCoordinator::Start(std::move(options));
    ASSERT_TRUE(coordinator.ok());
    auto control = TcpConnect("localhost", (*coordinator)->port());
    ASSERT_TRUE(control.ok());
    RegisterSqlMessage reg;
    reg.worker_id = 0;
    reg.num_workers = 1;
    reg.host = "node0";
    reg.port = 4242;
    reg.command = "svm";
    reg.schema = Schema::Make({{"x", DataType::kInt64}});
    ASSERT_TRUE(
        SendFrame(&*control, FrameType::kRegisterSql, reg.Encode()).ok());
    ASSERT_TRUE(RecvFrame(&*control).ok());
    checkpoint = (*coordinator)->Checkpoint();
    (*coordinator)->Stop();  // The "crash".
  }
  StreamCoordinator::Options options;
  options.splits_per_worker = 2;
  auto resumed = StreamCoordinator::Resume(std::move(options), checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status();

  // Splits survive the failover.
  auto control = TcpConnect("localhost", (*resumed)->port());
  ASSERT_TRUE(control.ok());
  ASSERT_TRUE(SendFrame(&*control, FrameType::kGetSplits, "").ok());
  auto frame = RecvFrame(&*control);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, FrameType::kSplits);
  auto splits = SplitsMessage::Decode(frame->payload);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->splits.size(), 2u);

  // Matchmaking works against the resumed coordinator.
  auto ml_control = TcpConnect("localhost", (*resumed)->port());
  ASSERT_TRUE(ml_control.ok());
  RegisterMlMessage reg_ml;
  reg_ml.split_id = 1;
  ASSERT_TRUE(
      SendFrame(&*ml_control, FrameType::kRegisterMl, reg_ml.Encode()).ok());
  auto match_frame = RecvFrame(&*ml_control);
  ASSERT_TRUE(match_frame.ok());
  ASSERT_EQ(match_frame->type, FrameType::kMatch);
  auto match = MatchMessage::Decode(match_frame->payload);
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->port, 4242);
}

TEST(CoordinatorTest, BarrierTimesOutWithoutFullRegistration) {
  StreamCoordinator::Options options;
  options.barrier_timeout_ms = 200;
  auto coordinator = StreamCoordinator::Start(std::move(options));
  ASSERT_TRUE(coordinator.ok());
  // No SQL worker ever registers, so the splits barrier cannot complete;
  // a GetSplits request must fail after barrier_timeout_ms, not hang.
  auto control = TcpConnect("localhost", (*coordinator)->port());
  ASSERT_TRUE(control.ok());
  ASSERT_TRUE(SendFrame(&*control, FrameType::kGetSplits, "").ok());
  auto reply = RecvFrame(&*control);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(reply->payload.find("timed out"), std::string::npos)
      << reply->payload;
}

TEST(CoordinatorTest, ResumeRejectsCorruptCheckpoint) {
  StreamCoordinator::Options options;
  EXPECT_FALSE(StreamCoordinator::Resume(std::move(options), "garbage").ok());
}

TEST(CoordinatorTest, UnknownSplitRejected) {
  StreamCoordinator::Options options;
  options.barrier_timeout_ms = 500;
  auto coordinator = StreamCoordinator::Start(std::move(options));
  ASSERT_TRUE(coordinator.ok());
  {
    auto control = TcpConnect("localhost", (*coordinator)->port());
    ASSERT_TRUE(control.ok());
    RegisterSqlMessage reg;
    reg.worker_id = 0;
    reg.num_workers = 1;
    reg.host = "node0";
    reg.port = 1;
    reg.command = "t";
    reg.schema = Schema::Make({{"x", DataType::kInt64}});
    ASSERT_TRUE(
        SendFrame(&*control, FrameType::kRegisterSql, reg.Encode()).ok());
    ASSERT_TRUE(RecvFrame(&*control).ok());
  }
  auto control = TcpConnect("localhost", (*coordinator)->port());
  ASSERT_TRUE(control.ok());
  RegisterMlMessage bad;
  bad.split_id = 99;
  ASSERT_TRUE(SendFrame(&*control, FrameType::kRegisterMl, bad.Encode()).ok());
  auto reply = RecvFrame(&*control);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kError);
}

}  // namespace
}  // namespace sqlink
