#include "common/failpoint.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "common/string_util.h"

namespace sqlink {

namespace {

/// Parses "name(arg1,arg2)" into its pieces; `args` is empty for a bare
/// name, and a name with empty parens ("error()") yields one empty arg slot
/// rejected later by the numeric parsers.
struct Call {
  std::string name;
  std::vector<std::string> args;
};

Result<Call> ParseCall(const std::string& text) {
  Call call;
  const size_t open = text.find('(');
  if (open == std::string::npos) {
    call.name = std::string(TrimWhitespace(text));
    return call;
  }
  if (text.back() != ')') {
    return Status::InvalidArgument("unbalanced parentheses in failpoint spec: " +
                                   text);
  }
  call.name = std::string(TrimWhitespace(text.substr(0, open)));
  const std::string inner = text.substr(open + 1, text.size() - open - 2);
  for (const std::string& piece : SplitString(inner, ',')) {
    call.args.push_back(std::string(TrimWhitespace(piece)));
  }
  return call;
}

Result<int64_t> ParseInt(const std::string& text, const char* what) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("missing ") + what +
                                   " in failpoint spec");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value < 0) {
    return Status::InvalidArgument(std::string("bad ") + what +
                                   " in failpoint spec: " + text);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseProbability(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("missing probability in failpoint spec");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value < 0.0 ||
      value > 1.0) {
    return Status::InvalidArgument("bad probability in failpoint spec: " +
                                   text);
  }
  return value;
}

}  // namespace

std::atomic<int64_t> FailpointRegistry::active_count_{0};

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    const Status status = ConfigureFromString(env);
    if (!status.ok()) {
      LOG_WARNING() << "ignoring malformed FAILPOINTS env entry: " << status;
    }
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* const registry = new FailpointRegistry();
  return *registry;
}

namespace {
// Constructing the registry is what parses FAILPOINTS, but the AnyActive()
// fast path never constructs the singleton. Touch it at load time so
// env-armed points are live from the very first evaluation.
[[maybe_unused]] const bool kEnvFailpointsLoaded =
    (FailpointRegistry::Global(), true);
}  // namespace

Result<FailpointSpec> FailpointRegistry::ParseSpec(const std::string& text) {
  FailpointSpec spec;
  const std::vector<std::string> segments = SplitString(text, ':');
  if (segments.empty()) {
    return Status::InvalidArgument("empty failpoint spec");
  }
  // Leading segments are modifiers; the last one is the action.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    ASSIGN_OR_RETURN(Call mod, ParseCall(segments[i]));
    if (mod.name == "after") {
      if (mod.args.size() != 1) {
        return Status::InvalidArgument("after() takes one argument");
      }
      ASSIGN_OR_RETURN(spec.skip_hits, ParseInt(mod.args[0], "after count"));
    } else if (mod.name == "every") {
      if (mod.args.size() != 1) {
        return Status::InvalidArgument("every() takes one argument");
      }
      ASSIGN_OR_RETURN(spec.every_nth, ParseInt(mod.args[0], "every count"));
      if (spec.every_nth < 1) {
        return Status::InvalidArgument("every() needs a positive count");
      }
    } else if (mod.name == "prob") {
      if (mod.args.empty() || mod.args.size() > 2) {
        return Status::InvalidArgument("prob() takes probability[,seed]");
      }
      ASSIGN_OR_RETURN(spec.probability, ParseProbability(mod.args[0]));
      if (mod.args.size() == 2) {
        ASSIGN_OR_RETURN(int64_t seed, ParseInt(mod.args[1], "seed"));
        spec.seed = static_cast<uint64_t>(seed);
      }
    } else {
      return Status::InvalidArgument("unknown failpoint modifier: " +
                                     mod.name);
    }
  }
  ASSIGN_OR_RETURN(Call action, ParseCall(segments.back()));
  if (action.name == "off") {
    if (!action.args.empty()) {
      return Status::InvalidArgument("off takes no arguments");
    }
    spec.action = FailpointSpec::Action::kOff;
  } else if (action.name == "error" || action.name == "close") {
    spec.action = action.name == "error" ? FailpointSpec::Action::kError
                                         : FailpointSpec::Action::kClose;
    if (action.args.size() > 1) {
      return Status::InvalidArgument(action.name +
                                     " takes at most a fire budget");
    }
    if (action.args.size() == 1) {
      ASSIGN_OR_RETURN(spec.max_fires, ParseInt(action.args[0], "fire budget"));
    }
  } else if (action.name == "delay") {
    spec.action = FailpointSpec::Action::kDelay;
    if (action.args.empty() || action.args.size() > 2) {
      return Status::InvalidArgument("delay() takes ms[,fire budget]");
    }
    ASSIGN_OR_RETURN(int64_t ms, ParseInt(action.args[0], "delay ms"));
    spec.delay_ms = static_cast<int>(ms);
    if (action.args.size() == 2) {
      ASSIGN_OR_RETURN(spec.max_fires, ParseInt(action.args[1], "fire budget"));
    }
  } else {
    return Status::InvalidArgument("unknown failpoint action: " + action.name);
  }
  return spec;
}

Status FailpointRegistry::Configure(const std::string& name,
                                    const FailpointSpec& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  const bool was_armed =
      it != entries_.end() && it->second.spec.action != FailpointSpec::Action::kOff;
  if (spec.action == FailpointSpec::Action::kOff) {
    if (it != entries_.end()) {
      entries_.erase(it);
      if (was_armed) active_count_.fetch_add(-1, std::memory_order_relaxed);
    }
    return Status::OK();
  }
  Entry entry;
  entry.spec = spec;
  entry.rng = Random(spec.seed);
  entries_[name] = std::move(entry);
  if (!was_armed) active_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FailpointRegistry::Configure(const std::string& name,
                                    const std::string& spec) {
  ASSIGN_OR_RETURN(FailpointSpec parsed, ParseSpec(spec));
  return Configure(name, parsed);
}

Status FailpointRegistry::ConfigureFromString(const std::string& config) {
  for (const std::string& piece : SplitString(config, ',')) {
    const std::string entry(TrimWhitespace(piece));
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint entry needs name=spec: " +
                                     entry);
    }
    const std::string name(TrimWhitespace(entry.substr(0, eq)));
    const std::string spec(TrimWhitespace(entry.substr(eq + 1)));
    RETURN_IF_ERROR(Configure(name, spec));
  }
  return Status::OK();
}

void FailpointRegistry::Clear(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  if (it->second.spec.action != FailpointSpec::Action::kOff) {
    active_count_.fetch_add(-1, std::memory_order_relaxed);
  }
  entries_.erase(it);
}

void FailpointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t armed = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.spec.action != FailpointSpec::Action::kOff) ++armed;
  }
  entries_.clear();
  active_count_.fetch_add(-armed, std::memory_order_relaxed);
}

int64_t FailpointRegistry::Hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.hits;
}

int64_t FailpointRegistry::Fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.fires;
}

FailpointOutcome FailpointRegistry::Evaluate(std::string_view name) {
  int delay_ms = 0;
  FailpointOutcome outcome = FailpointOutcome::kNone;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end() ||
        it->second.spec.action == FailpointSpec::Action::kOff) {
      return FailpointOutcome::kNone;
    }
    Entry& entry = it->second;
    ++entry.hits;
    const FailpointSpec& spec = entry.spec;
    const int64_t eligible = entry.hits - spec.skip_hits;
    const bool triggers =
        eligible > 0 && (eligible % spec.every_nth) == 0 &&
        (spec.max_fires < 0 || entry.fires < spec.max_fires) &&
        (spec.probability >= 1.0 || entry.rng.Bernoulli(spec.probability));
    if (triggers) {
      ++entry.fires;
      fired = true;
      switch (spec.action) {
        case FailpointSpec::Action::kError:
          outcome = FailpointOutcome::kError;
          break;
        case FailpointSpec::Action::kClose:
          outcome = FailpointOutcome::kClose;
          break;
        case FailpointSpec::Action::kDelay:
          delay_ms = spec.delay_ms;
          break;
        case FailpointSpec::Action::kOff:
          break;
      }
    }
  }
  MetricsRegistry::Global().Increment("failpoint." + std::string(name) +
                                      ".hits");
  if (fired) {
    MetricsRegistry::Global().Increment("failpoint." + std::string(name) +
                                        ".fired");
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return outcome;
}

}  // namespace sqlink
