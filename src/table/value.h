#ifndef SQLINK_TABLE_VALUE_H_
#define SQLINK_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace sqlink {

/// SQL column types supported by the engine. Categorical variables are
/// STRING columns (the paper's motivating case for recoding).
enum class DataType : int { kBool = 0, kInt64 = 1, kDouble = 2, kString = 3 };

std::string_view DataTypeToString(DataType type);
Result<DataType> DataTypeFromString(std::string_view name);

/// A single SQL value: NULL or one of the supported types. Values are
/// ordered and hashable so they can serve as join/distinct keys.
class Value {
 public:
  /// NULL.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(std::in_place_index<1>, v)); }
  static Value Int64(int64_t v) {
    return Value(Repr(std::in_place_index<2>, v));
  }
  static Value Double(double v) {
    return Value(Repr(std::in_place_index<3>, v));
  }
  static Value String(std::string v) {
    return Value(Repr(std::in_place_index<4>, std::move(v)));
  }

  bool is_null() const { return repr_.index() == 0; }
  bool is_bool() const { return repr_.index() == 1; }
  bool is_int64() const { return repr_.index() == 2; }
  bool is_double() const { return repr_.index() == 3; }
  bool is_string() const { return repr_.index() == 4; }

  /// The type of a non-null value; calling on NULL aborts.
  DataType type() const;

  bool bool_value() const { return std::get<1>(repr_); }
  int64_t int64_value() const { return std::get<2>(repr_); }
  double double_value() const { return std::get<3>(repr_); }
  const std::string& string_value() const { return std::get<4>(repr_); }

  /// Numeric widening: int64 and double values as double. Errors otherwise.
  Result<double> AsDouble() const;

  /// Exact equality; NULL equals NULL here (used for grouping/DISTINCT,
  /// not SQL ternary logic — SQL comparison semantics live in the
  /// expression evaluator).
  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order: NULL first, then by type index, then by value.
  /// Cross-numeric (int64 vs double) comparisons compare numerically.
  bool operator<(const Value& other) const;

  size_t Hash() const;

  /// Text rendering used by the CSV codec and diagnostics. NULL renders as
  /// the empty string; booleans as "true"/"false".
  std::string ToString() const;

  /// Parses `text` as the requested type. Empty text parses to NULL.
  static Result<Value> Parse(std::string_view text, DataType type);

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

/// One table row. Rows are plain value vectors; the schema lives with the
/// batch/table they belong to.
using Row = std::vector<Value>;

/// Combines per-column hashes of the key columns of a row.
size_t HashRowKey(const Row& row, const std::vector<int>& key_indices);

}  // namespace sqlink

#endif  // SQLINK_TABLE_VALUE_H_
