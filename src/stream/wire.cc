#include "stream/wire.h"

#include <cstring>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"

namespace sqlink {

namespace {

/// Per-instrument handles resolved once (satisfying the hot-path contract:
/// no registry lock per frame).
struct WireMetrics {
  Counter* frames_sent;
  Counter* frames_received;
  Counter* bytes_sent;
  Counter* bytes_received;
  Counter* frames_pooled;
  Counter* pool_miss;
  Histogram* send_micros;
  Histogram* recv_micros;

  static const WireMetrics& Get() {
    static const WireMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return WireMetrics{registry.GetCounter("stream.wire.frames_sent"),
                         registry.GetCounter("stream.wire.frames_received"),
                         registry.GetCounter("stream.wire.bytes_sent"),
                         registry.GetCounter("stream.wire.bytes_received"),
                         registry.GetCounter("stream.wire.frames_pooled"),
                         registry.GetCounter("stream.wire.pool_miss"),
                         registry.GetHistogram("stream.wire.send_frame_micros"),
                         registry.GetHistogram("stream.wire.recv_frame_micros")};
    }();
    return metrics;
  }
};

}  // namespace

namespace {

Status SendFrameImpl(TcpSocket* socket, FrameType type,
                     std::string_view payload, uint64_t seq,
                     const TraceContext& trace);

}  // namespace

Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload) {
  return SendFrameImpl(socket, type, payload, /*seq=*/0,
                       Tracer::CurrentContext());
}

Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload,
                 const TraceContext& trace) {
  return SendFrameImpl(socket, type, payload, /*seq=*/0, trace);
}

Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload,
                 uint64_t seq) {
  return SendFrameImpl(socket, type, payload, seq, Tracer::CurrentContext());
}

namespace {

Status SendFrameImpl(TcpSocket* socket, FrameType type,
                     std::string_view payload, uint64_t seq,
                     const TraceContext& trace) {
  // Header on the stack + scatter-gather send: the steady-state data path
  // never concatenates header and payload into a heap buffer.
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(header, type, static_cast<uint32_t>(payload.size()), seq,
                    /*channel=*/0, trace);
  const std::string_view header_view(header, kFrameHeaderBytes);
  FailpointOutcome outcome = SQLINK_FAILPOINT("stream.wire.send_frame");
  if (outcome == FailpointOutcome::kNone &&
      (type == FrameType::kData || type == FrameType::kColData)) {
    outcome = SQLINK_FAILPOINT("stream.wire.send_data");
  }
  switch (outcome) {
    case FailpointOutcome::kNone:
      break;
    case FailpointOutcome::kError:
      return Status::NetworkError("failpoint: injected frame send error");
    case FailpointOutcome::kClose: {
      // Ship only half the frame before dropping the connection, so the
      // receiver observes a mid-frame disconnect rather than a clean EOF.
      const size_t half = (kFrameHeaderBytes + payload.size()) / 2;
      if (half <= kFrameHeaderBytes) {
        (void)socket->SendAll(header_view.substr(0, half));
      } else {
        (void)socket->SendAllV(header_view,
                               payload.substr(0, half - kFrameHeaderBytes));
      }
      socket->Close();
      return Status::NetworkError("failpoint: connection dropped mid-frame");
    }
  }
  const WireMetrics& metrics = WireMetrics::Get();
  Stopwatch timer;
  const Status status = socket->SendAllV(header_view, payload);
  if (status.ok()) {
    metrics.send_micros->Record(timer.ElapsedMicros());
    metrics.frames_sent->Increment();
    metrics.bytes_sent->Add(
        static_cast<int64_t>(kFrameHeaderBytes + payload.size()));
  }
  return status;
}

}  // namespace

void EncodeFrameHeader(char* out, FrameType type, uint32_t payload_len,
                       uint64_t seq, uint32_t channel,
                       const TraceContext& trace) {
  EncodeFixed32(out, payload_len);
  out[4] = static_cast<char>(type);
  EncodeFixed64(out + 5, trace.trace_id);
  EncodeFixed64(out + 13, trace.span_id);
  EncodeFixed64(out + 21, seq);
  EncodeFixed32(out + 29, channel);
}

Status RecvFrameInto(TcpSocket* socket, Frame* frame, std::string* scratch) {
  switch (SQLINK_FAILPOINT("stream.wire.recv_frame")) {
    case FailpointOutcome::kNone:
      break;
    case FailpointOutcome::kError:
      return Status::NetworkError("failpoint: injected frame recv error");
    case FailpointOutcome::kClose:
      socket->Close();
      return Status::NetworkError("failpoint: recv connection closed");
  }
  const WireMetrics& metrics = WireMetrics::Get();
  Stopwatch timer;
  RETURN_IF_ERROR(socket->RecvExactly(kFrameHeaderBytes, scratch));
  Decoder decoder(*scratch);
  ASSIGN_OR_RETURN(uint32_t length, decoder.GetFixed32());
  ASSIGN_OR_RETURN(uint8_t type, decoder.GetByte());
  frame->type = static_cast<FrameType>(type);
  ASSIGN_OR_RETURN(frame->trace.trace_id, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame->trace.span_id, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame->seq, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame->channel, decoder.GetFixed32());
  frame->payload.clear();
  if (length > 0) {
    RETURN_IF_ERROR(socket->RecvExactly(length, &frame->payload));
  }
  metrics.recv_micros->Record(timer.ElapsedMicros());
  metrics.frames_received->Increment();
  metrics.bytes_received->Add(
      static_cast<int64_t>(kFrameHeaderBytes + frame->payload.size()));
  return Status::OK();
}

Result<Frame> RecvFrame(TcpSocket* socket) {
  Frame frame;
  std::string scratch;
  RETURN_IF_ERROR(RecvFrameInto(socket, &frame, &scratch));
  return frame;
}

Result<bool> ExtractFrame(std::string_view buffer, size_t* cursor,
                          Frame* frame) {
  if (*cursor > buffer.size()) {
    return Status::Internal("frame cursor past end of buffer");
  }
  const std::string_view rest = buffer.substr(*cursor);
  if (rest.size() < kFrameHeaderBytes) return false;
  Decoder decoder(rest);
  ASSIGN_OR_RETURN(uint32_t length, decoder.GetFixed32());
  ASSIGN_OR_RETURN(uint8_t type, decoder.GetByte());
  if (rest.size() < kFrameHeaderBytes + length) return false;
  frame->type = static_cast<FrameType>(type);
  ASSIGN_OR_RETURN(frame->trace.trace_id, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame->trace.span_id, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame->seq, decoder.GetFixed64());
  ASSIGN_OR_RETURN(frame->channel, decoder.GetFixed32());
  frame->payload.assign(rest.data() + kFrameHeaderBytes, length);
  *cursor += kFrameHeaderBytes + length;
  return true;
}

Result<bool> ExtractFrame(std::string* buffer, Frame* frame) {
  size_t cursor = 0;
  ASSIGN_OR_RETURN(bool extracted, ExtractFrame(*buffer, &cursor, frame));
  if (extracted) buffer->erase(0, cursor);
  return extracted;
}

std::string FrameBufferPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!buffers_.empty()) {
      std::string buffer = std::move(buffers_.back());
      buffers_.pop_back();
      buffer.clear();
      WireMetrics::Get().frames_pooled->Increment();
      return buffer;
    }
  }
  WireMetrics::Get().pool_miss->Increment();
  return {};
}

void FrameBufferPool::Release(std::string buffer) {
  if (buffer.capacity() == 0 || buffer.capacity() > kMaxBufferCapacity) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (buffers_.size() >= kMaxPooled) return;
  buffers_.push_back(std::move(buffer));
}

FrameBufferPool* FrameBufferPool::Global() {
  static FrameBufferPool* const pool = new FrameBufferPool();
  return pool;
}

// --- Columnar channel encode/decode -----------------------------------------

namespace {

// Bounds-checked null probe (columns written by kernels may size null_words
// short when no nulls exist).
inline bool ColumnIsNull(const Column& col, size_t row) {
  const size_t word = row >> 6;
  return word < col.null_words.size() &&
         ((col.null_words[word] >> (row & 63)) & 1) != 0;
}

}  // namespace

ColumnarChannelEncoder::ColumnarChannelEncoder(SchemaPtr schema)
    : schema_(std::move(schema)),
      dicts_(schema_ != nullptr ? static_cast<size_t>(schema_->num_fields())
                                : 0) {}

Status ColumnarChannelEncoder::EncodeBatch(const ColumnBatch& batch,
                                           std::string* payload) {
  if (batch.num_columns() != dicts_.size()) {
    return Status::InvalidArgument(
        "columnar batch width does not match channel schema");
  }
  payload->clear();
  const size_t rows = batch.num_rows();
  PutVarint64(payload, rows);
  const size_t null_bytes = (rows + 7) / 8;
  std::vector<int32_t> remap;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < batch.num_columns(); ++i) {
    const Column& col = batch.column(i);
    bool has_nulls = false;
    for (const uint64_t word : col.null_words) {
      if (word != 0) {
        has_nulls = true;
        break;
      }
    }
    payload->push_back(has_nulls ? 1 : 0);
    if (has_nulls) {
      for (size_t b = 0; b < null_bytes; ++b) {
        const size_t word = b >> 3;
        const uint64_t bits =
            word < col.null_words.size() ? col.null_words[word] : 0;
        payload->push_back(
            static_cast<char>((bits >> ((b & 7) * 8)) & 0xFF));
      }
    }
    switch (col.type) {
      case DataType::kBool:
        payload->append(reinterpret_cast<const char*>(col.bools.data()),
                        rows);
        break;
      case DataType::kInt64:
        payload->append(reinterpret_cast<const char*>(col.ints.data()),
                        rows * 8);
        break;
      case DataType::kDouble:
        payload->append(reinterpret_cast<const char*>(col.doubles.data()),
                        rows * 8);
        break;
      case DataType::kString: {
        // Register the batch's dictionary entries with the channel
        // dictionary; new entries ride in this frame as a delta.
        StringDict& channel = dicts_[i];
        const int32_t before = channel.size();
        remap.assign(static_cast<size_t>(col.dict.size()), 0);
        for (int32_t id = 0; id < col.dict.size(); ++id) {
          remap[static_cast<size_t>(id)] = channel.GetOrAdd(col.dict[id]);
        }
        PutVarint64(payload, static_cast<uint64_t>(before));
        PutVarint64(payload, static_cast<uint64_t>(channel.size() - before));
        for (int32_t id = before; id < channel.size(); ++id) {
          PutLengthPrefixed(payload, channel[id]);
        }
        const size_t base = payload->size();
        payload->resize(base + rows * 4);
        char* out = payload->data() + base;
        for (size_t r = 0; r < rows; ++r) {
          int32_t code = 0;
          if (!ColumnIsNull(col, r)) {
            code = remap[static_cast<size_t>(col.codes[r])];
          }
          std::memcpy(out + r * 4, &code, 4);
        }
        break;
      }
    }
  }
  return Status::OK();
}

std::string ColumnarChannelEncoder::SnapshotDicts() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < dicts_.size(); ++i) {
    if (schema_->field(static_cast<int>(i)).type != DataType::kString) {
      continue;
    }
    const StringDict& dict = dicts_[i];
    PutVarint64(&out, static_cast<uint64_t>(dict.size()));
    for (int32_t id = 0; id < dict.size(); ++id) {
      PutLengthPrefixed(&out, dict[id]);
    }
  }
  return out;
}

Status ColumnarChannelDecoder::ApplySnapshot(std::string_view payload,
                                             const SchemaPtr& schema) {
  if (schema == nullptr) {
    return Status::FailedPrecondition("dictionary page before schema");
  }
  dicts_.resize(static_cast<size_t>(schema->num_fields()));
  Decoder decoder(payload);
  for (int i = 0; i < schema->num_fields(); ++i) {
    if (schema->field(i).type != DataType::kString) continue;
    ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
    StringDict& dict = dicts_[static_cast<size_t>(i)];
    for (uint64_t k = 0; k < count; ++k) {
      ASSIGN_OR_RETURN(std::string_view entry, decoder.GetLengthPrefixed());
      // Entries are append-only and ordered, so overlap with what this
      // channel already decoded is idempotent.
      if (k < static_cast<uint64_t>(dict.size())) continue;
      dict.GetOrAdd(entry);
    }
  }
  return Status::OK();
}

Status ColumnarChannelDecoder::DecodeBatch(std::string_view payload,
                                           const SchemaPtr& schema,
                                           ColumnBatch* out) {
  if (schema == nullptr) {
    return Status::FailedPrecondition("columnar frame before schema");
  }
  dicts_.resize(static_cast<size_t>(schema->num_fields()));
  out->Reset(schema);
  Decoder decoder(payload);
  ASSIGN_OR_RETURN(uint64_t rows64, decoder.GetVarint64());
  if (rows64 > (uint64_t{1} << 30)) {
    return Status::DataLoss("implausible columnar row count");
  }
  const size_t rows = static_cast<size_t>(rows64);
  const size_t null_bytes = (rows + 7) / 8;
  const size_t null_word_count = (rows + 63) / 64;
  for (size_t i = 0; i < out->num_columns(); ++i) {
    Column& col = out->column(i);
    ASSIGN_OR_RETURN(uint8_t has_nulls, decoder.GetByte());
    col.null_words.assign(null_word_count, 0);
    if (has_nulls != 0) {
      ASSIGN_OR_RETURN(std::string_view bits, decoder.GetRaw(null_bytes));
      for (size_t b = 0; b < null_bytes; ++b) {
        col.null_words[b >> 3] |=
            static_cast<uint64_t>(static_cast<uint8_t>(bits[b]))
            << ((b & 7) * 8);
      }
    }
    switch (col.type) {
      case DataType::kBool: {
        ASSIGN_OR_RETURN(std::string_view raw, decoder.GetRaw(rows));
        col.bools.resize(rows);
        std::memcpy(col.bools.data(), raw.data(), rows);
        break;
      }
      case DataType::kInt64: {
        ASSIGN_OR_RETURN(std::string_view raw, decoder.GetRaw(rows * 8));
        col.ints.resize(rows);
        std::memcpy(col.ints.data(), raw.data(), rows * 8);
        break;
      }
      case DataType::kDouble: {
        ASSIGN_OR_RETURN(std::string_view raw, decoder.GetRaw(rows * 8));
        col.doubles.resize(rows);
        std::memcpy(col.doubles.data(), raw.data(), rows * 8);
        break;
      }
      case DataType::kString: {
        ASSIGN_OR_RETURN(uint64_t first, decoder.GetVarint64());
        ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
        StringDict& channel = dicts_[i];
        if (first > static_cast<uint64_t>(channel.size())) {
          return Status::DataLoss("columnar dictionary delta gap");
        }
        for (uint64_t k = 0; k < count; ++k) {
          ASSIGN_OR_RETURN(std::string_view entry,
                           decoder.GetLengthPrefixed());
          if (first + k < static_cast<uint64_t>(channel.size())) continue;
          channel.GetOrAdd(entry);
        }
        ASSIGN_OR_RETURN(std::string_view raw, decoder.GetRaw(rows * 4));
        col.codes.resize(rows);
        std::memcpy(col.codes.data(), raw.data(), rows * 4);
        for (size_t r = 0; r < rows; ++r) {
          if (!ColumnIsNull(col, r) &&
              (col.codes[r] < 0 || col.codes[r] >= channel.size())) {
            return Status::DataLoss("string code outside channel dictionary");
          }
        }
        col.dict = channel;
        break;
      }
    }
  }
  out->SetRowCountForDecode(rows);
  return Status::OK();
}

namespace {
/// Marker byte so a typed-status payload is distinguishable from the legacy
/// free-text error payloads still emitted by older call sites.
constexpr uint8_t kStatusPayloadTag = 0xF5;
}  // namespace

std::string EncodeStatus(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(kStatusPayloadTag));
  PutVarint64(&out, static_cast<uint64_t>(status.code()));
  PutLengthPrefixed(&out, status.message());
  return out;
}

Status DecodeStatusPayload(std::string_view payload) {
  auto fallback = [&] {
    return Status::NetworkError("peer failed: " + std::string(payload));
  };
  if (payload.empty() ||
      static_cast<uint8_t>(payload.front()) != kStatusPayloadTag) {
    return fallback();
  }
  Decoder decoder(payload.substr(1));
  auto code = decoder.GetVarint64();
  if (!code.ok() || *code == 0 ||
      *code > static_cast<uint64_t>(StatusCode::kOverloaded)) {
    return fallback();
  }
  auto message = decoder.GetLengthPrefixed();
  if (!message.ok()) return fallback();
  return Status(static_cast<StatusCode>(*code), std::string(*message));
}

void EncodeSchema(const Schema& schema, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    PutLengthPrefixed(out, field.name);
    out->push_back(static_cast<char>(field.type));
  }
}

Result<SchemaPtr> DecodeSchema(Decoder* decoder) {
  ASSIGN_OR_RETURN(uint64_t count, decoder->GetVarint64());
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(std::string_view name, decoder->GetLengthPrefixed());
    ASSIGN_OR_RETURN(uint8_t type, decoder->GetByte());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::DataLoss("bad data type in schema");
    }
    fields.push_back(Field{std::string(name), static_cast<DataType>(type)});
  }
  return Schema::Make(std::move(fields));
}

std::string RegisterSqlMessage::Encode() const {
  std::string out;
  PutVarint64Signed(&out, worker_id);
  PutVarint64Signed(&out, num_workers);
  PutLengthPrefixed(&out, host);
  PutVarint64Signed(&out, port);
  PutLengthPrefixed(&out, command);
  PutVarint64(&out, args.size());
  for (const std::string& arg : args) PutLengthPrefixed(&out, arg);
  EncodeSchema(*schema, &out);
  PutVarint64(&out, sink_key);
  return out;
}

Result<RegisterSqlMessage> RegisterSqlMessage::Decode(
    std::string_view payload) {
  Decoder decoder(payload);
  RegisterSqlMessage msg;
  ASSIGN_OR_RETURN(int64_t worker, decoder.GetVarint64Signed());
  msg.worker_id = static_cast<int>(worker);
  ASSIGN_OR_RETURN(int64_t total, decoder.GetVarint64Signed());
  msg.num_workers = static_cast<int>(total);
  ASSIGN_OR_RETURN(std::string_view host, decoder.GetLengthPrefixed());
  msg.host = std::string(host);
  ASSIGN_OR_RETURN(int64_t port, decoder.GetVarint64Signed());
  msg.port = static_cast<int>(port);
  ASSIGN_OR_RETURN(std::string_view command, decoder.GetLengthPrefixed());
  msg.command = std::string(command);
  ASSIGN_OR_RETURN(uint64_t num_args, decoder.GetVarint64());
  for (uint64_t i = 0; i < num_args; ++i) {
    ASSIGN_OR_RETURN(std::string_view arg, decoder.GetLengthPrefixed());
    msg.args.push_back(std::string(arg));
  }
  ASSIGN_OR_RETURN(msg.schema, DecodeSchema(&decoder));
  ASSIGN_OR_RETURN(msg.sink_key, decoder.GetVarint64());
  return msg;
}

std::string SplitsMessage::Encode() const {
  std::string out;
  EncodeSchema(*schema, &out);
  PutVarint64(&out, splits.size());
  for (const StreamSplitInfo& split : splits) {
    PutVarint64Signed(&out, split.split_id);
    PutVarint64Signed(&out, split.sql_worker);
    PutLengthPrefixed(&out, split.host);
    PutVarint64Signed(&out, split.port);
    PutVarint64Signed(&out, split.epoch);
    PutVarint64(&out, split.sink_key);
  }
  return out;
}

Result<SplitsMessage> SplitsMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  SplitsMessage msg;
  ASSIGN_OR_RETURN(msg.schema, DecodeSchema(&decoder));
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  for (uint64_t i = 0; i < count; ++i) {
    StreamSplitInfo split;
    ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
    split.split_id = static_cast<int>(id);
    ASSIGN_OR_RETURN(int64_t worker, decoder.GetVarint64Signed());
    split.sql_worker = static_cast<int>(worker);
    ASSIGN_OR_RETURN(std::string_view host, decoder.GetLengthPrefixed());
    split.host = std::string(host);
    ASSIGN_OR_RETURN(int64_t port, decoder.GetVarint64Signed());
    split.port = static_cast<int>(port);
    ASSIGN_OR_RETURN(split.epoch, decoder.GetVarint64Signed());
    ASSIGN_OR_RETURN(split.sink_key, decoder.GetVarint64());
    msg.splits.push_back(std::move(split));
  }
  return msg;
}

std::string RegisterMlMessage::Encode() const {
  std::string out;
  PutVarint64Signed(&out, split_id);
  return out;
}

Result<RegisterMlMessage> RegisterMlMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  RegisterMlMessage msg;
  ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
  msg.split_id = static_cast<int>(id);
  return msg;
}

std::string MatchMessage::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, host);
  PutVarint64Signed(&out, port);
  PutVarint64(&out, sink_key);
  return out;
}

Result<MatchMessage> MatchMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  MatchMessage msg;
  ASSIGN_OR_RETURN(std::string_view host, decoder.GetLengthPrefixed());
  msg.host = std::string(host);
  ASSIGN_OR_RETURN(int64_t port, decoder.GetVarint64Signed());
  msg.port = static_cast<int>(port);
  ASSIGN_OR_RETURN(msg.sink_key, decoder.GetVarint64());
  return msg;
}

std::string HelloMessage::Encode() const {
  std::string out;
  PutVarint64Signed(&out, split_id);
  out.push_back(restart ? 1 : 0);
  PutVarint64Signed(&out, resume_seq);
  return out;
}

Result<HelloMessage> HelloMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  HelloMessage msg;
  ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
  msg.split_id = static_cast<int>(id);
  ASSIGN_OR_RETURN(uint8_t restart, decoder.GetByte());
  msg.restart = restart != 0;
  ASSIGN_OR_RETURN(msg.resume_seq, decoder.GetVarint64Signed());
  return msg;
}

std::string OpenChannelMessage::Encode() const {
  std::string out;
  PutVarint64(&out, sink_key);
  PutVarint64(&out, window_bytes);
  PutLengthPrefixed(&out, hello.Encode());
  return out;
}

Result<OpenChannelMessage> OpenChannelMessage::Decode(
    std::string_view payload) {
  Decoder decoder(payload);
  OpenChannelMessage msg;
  ASSIGN_OR_RETURN(msg.sink_key, decoder.GetVarint64());
  ASSIGN_OR_RETURN(msg.window_bytes, decoder.GetVarint64());
  ASSIGN_OR_RETURN(std::string_view hello, decoder.GetLengthPrefixed());
  ASSIGN_OR_RETURN(msg.hello, HelloMessage::Decode(hello));
  return msg;
}

std::string HeartbeatMessage::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(role));
  PutVarint64Signed(&out, id);
  PutVarint64Signed(&out, epoch);
  PutVarint64(&out, applied_seq);
  out.push_back(static_cast<char>(bye));
  return out;
}

Result<HeartbeatMessage> HeartbeatMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  HeartbeatMessage msg;
  ASSIGN_OR_RETURN(msg.role, decoder.GetByte());
  ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
  msg.id = static_cast<int>(id);
  ASSIGN_OR_RETURN(msg.epoch, decoder.GetVarint64Signed());
  ASSIGN_OR_RETURN(msg.applied_seq, decoder.GetVarint64());
  ASSIGN_OR_RETURN(msg.bye, decoder.GetByte());
  return msg;
}

std::string ResumeMessage::Encode() const {
  std::string out;
  PutVarint64(&out, resume_seq);
  PutVarint64(&out, resume_rows);
  return out;
}

Result<ResumeMessage> ResumeMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  ResumeMessage msg;
  ASSIGN_OR_RETURN(msg.resume_seq, decoder.GetVarint64());
  ASSIGN_OR_RETURN(msg.resume_rows, decoder.GetVarint64());
  return msg;
}

std::string SplitGrantMessage::Encode() const {
  std::string out;
  out.push_back(granted ? 1 : 0);
  if (granted) {
    PutVarint64Signed(&out, split.split_id);
    PutVarint64Signed(&out, split.sql_worker);
    PutLengthPrefixed(&out, split.host);
    PutVarint64Signed(&out, split.port);
    PutVarint64Signed(&out, split.epoch);
    PutVarint64(&out, split.sink_key);
  }
  return out;
}

Result<SplitGrantMessage> SplitGrantMessage::Decode(std::string_view payload) {
  Decoder decoder(payload);
  SplitGrantMessage msg;
  ASSIGN_OR_RETURN(uint8_t granted, decoder.GetByte());
  msg.granted = granted != 0;
  if (msg.granted) {
    ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
    msg.split.split_id = static_cast<int>(id);
    ASSIGN_OR_RETURN(int64_t worker, decoder.GetVarint64Signed());
    msg.split.sql_worker = static_cast<int>(worker);
    ASSIGN_OR_RETURN(std::string_view host, decoder.GetLengthPrefixed());
    msg.split.host = std::string(host);
    ASSIGN_OR_RETURN(int64_t port, decoder.GetVarint64Signed());
    msg.split.port = static_cast<int>(port);
    ASSIGN_OR_RETURN(msg.split.epoch, decoder.GetVarint64Signed());
    ASSIGN_OR_RETURN(msg.split.sink_key, decoder.GetVarint64());
  }
  return msg;
}

std::string CompleteSplitMessage::Encode() const {
  std::string out;
  PutVarint64Signed(&out, split_id);
  PutVarint64Signed(&out, epoch);
  PutVarint64(&out, rows);
  return out;
}

Result<CompleteSplitMessage> CompleteSplitMessage::Decode(
    std::string_view payload) {
  Decoder decoder(payload);
  CompleteSplitMessage msg;
  ASSIGN_OR_RETURN(int64_t id, decoder.GetVarint64Signed());
  msg.split_id = static_cast<int>(id);
  ASSIGN_OR_RETURN(msg.epoch, decoder.GetVarint64Signed());
  ASSIGN_OR_RETURN(msg.rows, decoder.GetVarint64());
  return msg;
}

}  // namespace sqlink
