#include "ml/sgd.h"

#include <cmath>

#include "common/metrics.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace sqlink::ml {

double HingeLoss::AddGradient(const DenseVector& weights, double intercept,
                              const LabeledPoint& point, DenseVector* grad,
                              double* grad_intercept) const {
  // y in {-1, +1} internally; input labels are 0/1.
  const double y = point.label > 0.5 ? 1.0 : -1.0;
  const double margin = Dot(weights, point.features) + intercept;
  const double loss = std::max(0.0, 1.0 - y * margin);
  if (loss > 0.0) {
    Axpy(-y, point.features, grad);
    *grad_intercept += -y;
  }
  return loss;
}

double LogisticLoss::AddGradient(const DenseVector& weights, double intercept,
                                 const LabeledPoint& point, DenseVector* grad,
                                 double* grad_intercept) const {
  const double y = point.label > 0.5 ? 1.0 : 0.0;
  const double margin = Dot(weights, point.features) + intercept;
  const double p = 1.0 / (1.0 + std::exp(-margin));
  const double diff = p - y;
  Axpy(diff, point.features, grad);
  *grad_intercept += diff;
  // Numerically stable log-loss.
  const double z = y > 0.5 ? margin : -margin;
  return z > 0 ? std::log1p(std::exp(-z)) : -z + std::log1p(std::exp(z));
}

double SquaredLoss::AddGradient(const DenseVector& weights, double intercept,
                                const LabeledPoint& point, DenseVector* grad,
                                double* grad_intercept) const {
  const double diff =
      Dot(weights, point.features) + intercept - point.label;
  Axpy(diff, point.features, grad);
  *grad_intercept += diff;
  return 0.5 * diff * diff;
}

Result<SgdResult> RunDistributedSgd(const Dataset& data,
                                    const LossFunction& loss,
                                    const SgdOptions& options) {
  if (data.TotalPoints() == 0) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  if (options.iterations <= 0) {
    return Status::InvalidArgument("iterations must be positive");
  }
  const size_t dim = data.dimension();
  const size_t num_parts = data.num_partitions();

  SgdResult result;
  result.model.weights.assign(dim, 0.0);
  result.model.intercept = 0.0;

  // Per-worker gradient buffers reused across iterations.
  std::vector<DenseVector> worker_grads(num_parts, DenseVector(dim, 0.0));
  std::vector<double> worker_intercept_grads(num_parts, 0.0);
  std::vector<double> worker_losses(num_parts, 0.0);
  std::vector<size_t> worker_counts(num_parts, 0);

  TraceSpan train_span("ml.train.sgd");
  train_span.AddAttribute("iterations", options.iterations);
  train_span.AddAttribute("partitions", static_cast<int64_t>(num_parts));
  Histogram* const iteration_micros =
      MetricsRegistry::Global().GetHistogram("ml.train.iteration_micros");
  Counter* const iterations_run =
      MetricsRegistry::Global().GetCounter("ml.train.iterations");

  for (int iter = 1; iter <= options.iterations; ++iter) {
    Stopwatch iter_timer;
    // Map phase: each ML worker accumulates its partition's gradient.
    ParallelFor(num_parts, [&](size_t p) {
      DenseVector& grad = worker_grads[p];
      std::fill(grad.begin(), grad.end(), 0.0);
      worker_intercept_grads[p] = 0.0;
      worker_losses[p] = 0.0;
      worker_counts[p] = 0;
      Random rng(options.seed + static_cast<uint64_t>(iter) * 131 +
                 static_cast<uint64_t>(p));
      for (const LabeledPoint& point : data.partitions()[p]) {
        if (options.mini_batch_fraction < 1.0 &&
            !rng.Bernoulli(options.mini_batch_fraction)) {
          continue;
        }
        worker_losses[p] +=
            loss.AddGradient(result.model.weights, result.model.intercept,
                             point, &grad, &worker_intercept_grads[p]);
        ++worker_counts[p];
      }
    });

    // Reduce phase: sum gradients on the driver.
    DenseVector total_grad(dim, 0.0);
    double total_intercept_grad = 0.0;
    double total_loss = 0.0;
    size_t total_count = 0;
    for (size_t p = 0; p < num_parts; ++p) {
      Axpy(1.0, worker_grads[p], &total_grad);
      total_intercept_grad += worker_intercept_grads[p];
      total_loss += worker_losses[p];
      total_count += worker_counts[p];
    }
    if (total_count == 0) {  // Unlucky mini-batch sample.
      iteration_micros->Record(iter_timer.ElapsedMicros());
      iterations_run->Increment();
      continue;
    }

    const double reg_loss =
        0.5 * options.reg_param * SquaredNorm(result.model.weights);
    result.loss_history.push_back(
        total_loss / static_cast<double>(total_count) + reg_loss);

    // Update: w -= step/sqrt(iter) * (grad/count + lambda * w).
    const double step = options.step_size / std::sqrt(static_cast<double>(iter));
    const double scale = step / static_cast<double>(total_count);
    Scale(1.0 - step * options.reg_param, &result.model.weights);
    Axpy(-scale, total_grad, &result.model.weights);
    if (options.fit_intercept) {
      result.model.intercept -= scale * total_intercept_grad;
    }
    iteration_micros->Record(iter_timer.ElapsedMicros());
    iterations_run->Increment();
  }
  return result;
}

}  // namespace sqlink::ml
