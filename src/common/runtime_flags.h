#ifndef SQLINK_COMMON_RUNTIME_FLAGS_H_
#define SQLINK_COMMON_RUNTIME_FLAGS_H_

namespace sqlink {

/// Whether the columnar hot path is enabled (SQLINK_COLUMNAR=on|off,
/// default on). Gates the sink's columnar frame encoding, the vectorized
/// transform kernels, and the columnar ML ingest; the row path stays as the
/// fallback and the two are wire-interoperable per channel (a sink picks one
/// encoding per query, readers understand both).
///
/// The environment is read once; tests flip the mode in-process with
/// SetColumnarEnabledForTest.
bool ColumnarEnabled();

/// Test hook: 1 = force on, 0 = force off, -1 = back to the environment.
void SetColumnarEnabledForTest(int enabled);

}  // namespace sqlink

#endif  // SQLINK_COMMON_RUNTIME_FLAGS_H_
