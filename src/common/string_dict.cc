#include "common/string_dict.h"

namespace sqlink {

namespace {
constexpr size_t kInitialSlots = 16;
}  // namespace

uint64_t StringDict::Hash(std::string_view value) {
  // FNV-1a: cheap, decent dispersion for short categorical labels.
  uint64_t h = 1469598103934665603ull;
  for (const char c : value) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void StringDict::Rehash(size_t new_slot_count) {
  slots_.assign(new_slot_count, -1);
  mask_ = new_slot_count - 1;
  const int32_t n = size();
  for (int32_t id = 0; id < n; ++id) {
    size_t slot = Hash((*this)[id]) & mask_;
    while (slots_[slot] >= 0) slot = (slot + 1) & mask_;
    slots_[slot] = id;
  }
}

int32_t StringDict::Find(std::string_view value) const {
  if (slots_.empty()) return -1;
  size_t slot = Hash(value) & mask_;
  for (;;) {
    const int32_t id = slots_[slot];
    if (id < 0) return -1;
    if ((*this)[id] == value) return id;
    slot = (slot + 1) & mask_;
  }
}

int32_t StringDict::GetOrAdd(std::string_view value) {
  if (slots_.empty()) {
    Rehash(kInitialSlots);
    offsets_.push_back(0);
  }
  size_t slot = Hash(value) & mask_;
  for (;;) {
    const int32_t id = slots_[slot];
    if (id < 0) break;
    if ((*this)[id] == value) return id;
    slot = (slot + 1) & mask_;
  }
  const int32_t id = size();
  heap_.append(value.data(), value.size());
  offsets_.push_back(static_cast<uint32_t>(heap_.size()));
  slots_[slot] = id;
  // Keep the load factor under ~0.7 so probes stay short.
  if (static_cast<size_t>(id) + 1 >= slots_.size() - slots_.size() / 4) {
    Rehash(slots_.size() * 2);
  }
  return id;
}

void StringDict::Clear() {
  heap_.clear();
  offsets_.clear();
  slots_.clear();
  mask_ = 0;
}

}  // namespace sqlink
