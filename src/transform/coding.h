#ifndef SQLINK_TRANSFORM_CODING_H_
#define SQLINK_TRANSFORM_CODING_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace sqlink {

/// Coding schemes that expand a recoded categorical variable (consecutive
/// integers 1..K) into numeric feature columns (paper §2.2: dummy coding,
/// with effect and orthogonal coding as the mentioned variants).
enum class CodingScheme : int {
  kDummy,       // K binary columns; value i sets column i (one-hot).
  kEffect,      // K-1 columns; value i<K sets column i, value K is all -1.
  kOrthogonal,  // K-1 orthogonal-polynomial contrast columns (doubles).
};

std::string_view CodingSchemeToString(CodingScheme scheme);
Result<CodingScheme> CodingSchemeFromString(std::string_view name);

/// Number of generated columns for a variable with `k` distinct values.
int CodingOutputColumns(CodingScheme scheme, int k);

/// The contrast matrix of a scheme for `k` levels: row (value-1) holds the
/// generated column values for that level. Dummy/effect entries are 0/1/-1;
/// orthogonal entries are unit-norm polynomial contrasts (as R's
/// contr.poly).
Result<std::vector<std::vector<double>>> CodingMatrix(CodingScheme scheme,
                                                      int k);

/// One categorical column to expand: its (recoded) name, its distinct-value
/// count, optional level labels used to name the generated columns
/// (Figure 1(c) names the gender columns "female"/"male").
struct CodedColumnSpec {
  std::string column;
  int cardinality = 0;
  std::vector<std::string> labels;  // Empty, or exactly `cardinality` labels.
};

/// Parses the UDF argument syntax:
///   "gender:2,abandoned:2"        (counts only)
///   "gender=F|M,abandoned=Yes|No" (labels; cardinality = label count)
Result<std::vector<CodedColumnSpec>> ParseCodedColumnSpecs(
    const std::string& spec);

/// Renders specs back to the argument syntax (rewriter output).
std::string FormatCodedColumnSpecs(const std::vector<CodedColumnSpec>& specs);

/// Output column names for one spec: "<col>_<label>" when labels are given,
/// else "<col>_<i>" with i starting at 1.
std::vector<std::string> CodedColumnNames(const CodedColumnSpec& spec,
                                          CodingScheme scheme);

}  // namespace sqlink

#endif  // SQLINK_TRANSFORM_CODING_H_
