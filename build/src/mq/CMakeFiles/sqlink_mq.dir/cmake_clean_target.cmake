file(REMOVE_RECURSE
  "libsqlink_mq.a"
)
