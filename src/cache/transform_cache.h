#ifndef SQLINK_CACHE_TRANSFORM_CACHE_H_
#define SQLINK_CACHE_TRANSFORM_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "table/table.h"
#include "transform/coding.h"
#include "transform/recode_map.h"

namespace sqlink {

/// What the user asked the rewriter to do (§4 input): the data-prep SQL,
/// which categorical output columns to recode, and which of those to expand
/// with a coding scheme.
struct TransformRequest {
  std::string prep_sql;
  std::vector<std::string> recode_columns;
  std::map<std::string, CodingScheme> codings;  // Keyed by column name.

  bool WantsRecode(const std::string& column) const;
  /// Coding scheme for a column, if any.
  const CodingScheme* CodingFor(const std::string& column) const;
};

/// One cached transformation artifact (§5): either the fully transformed
/// result (a materialized table) or just the intermediate recode map.
struct TransformCacheEntry {
  TransformRequest request;
  std::shared_ptr<SelectStmt> prep_stmt;  // Parsed request.prep_sql.
  RecodeMap recode_map;
  /// Set only for fully-transformed entries: the catalog name of the
  /// materialized table and its schema.
  std::string result_table;
  SchemaPtr result_schema;

  bool has_full_result() const { return !result_table.empty(); }
};

/// Store of transformation artifacts keyed by their originating request.
/// Lookup (the §5.1/§5.2 matching) lives in the rewriter; the cache is a
/// plain synchronized store with hit/miss accounting.
class TransformCache {
 public:
  TransformCache() = default;

  TransformCache(const TransformCache&) = delete;
  TransformCache& operator=(const TransformCache&) = delete;

  /// Caches a fully transformed result (§5.1). The table itself lives in
  /// the engine catalog under `result_table`.
  Status PutFullResult(TransformRequest request,
                       std::shared_ptr<SelectStmt> prep_stmt,
                       RecodeMap recode_map, std::string result_table,
                       SchemaPtr result_schema);

  /// Caches an intermediate recode map (§5.2).
  Status PutRecodeMap(TransformRequest request,
                      std::shared_ptr<SelectStmt> prep_stmt,
                      RecodeMap recode_map);

  /// Snapshot of all entries for matching.
  std::vector<std::shared_ptr<const TransformCacheEntry>> Entries() const;

  void RecordHit(bool full_result);
  void RecordMiss();
  int64_t full_hits() const;
  int64_t map_hits() const;
  int64_t misses() const;

  void Clear();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const TransformCacheEntry>> entries_;
  int64_t full_hits_ = 0;
  int64_t map_hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace sqlink

#endif  // SQLINK_CACHE_TRANSFORM_CACHE_H_
