#include "sql/planner.h"

#include <algorithm>
#include <functional>

#include "common/status_macros.h"
#include "common/string_util.h"

namespace sqlink {

namespace {

/// True if the expression contains any column reference.
bool HasColumnRef(const Expr& expr) {
  if (expr.kind == ExprKind::kColumnRef) return true;
  for (const ExprPtr& child : expr.children) {
    if (HasColumnRef(*child)) return true;
  }
  return false;
}

/// True if the expression contains an aggregate function call.
bool HasAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFunctionCall &&
      IsAggregateFunctionName(expr.function_name)) {
    return true;
  }
  for (const ExprPtr& child : expr.children) {
    if (HasAggregate(*child)) return true;
  }
  return false;
}

/// Tries to bind against a scope; true on success.
bool BindsWithin(const Expr& expr, const NameScope& scope,
                 const ScalarFunctionRegistry& scalars) {
  return BindExpression(expr, scope, scalars).ok();
}

/// A human-friendly output name for a select expression.
std::string DeriveOutputName(const SelectItem& item, size_t position) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  if (item.expr->kind == ExprKind::kFunctionCall) {
    return ToLowerAscii(item.expr->function_name);
  }
  return "col" + std::to_string(position);
}

Result<AggFunc> AggFuncFromName(const std::string& name, bool has_arg) {
  if (EqualsIgnoreCase(name, "count")) {
    return has_arg ? AggFunc::kCount : AggFunc::kCountStar;
  }
  if (EqualsIgnoreCase(name, "sum")) return AggFunc::kSum;
  if (EqualsIgnoreCase(name, "min")) return AggFunc::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggFunc::kMax;
  if (EqualsIgnoreCase(name, "avg")) return AggFunc::kAvg;
  return Status::InvalidArgument("unknown aggregate: " + name);
}

DataType AggOutputType(AggFunc func, DataType arg_type) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg_type;
  }
  return DataType::kDouble;
}

}  // namespace

Planner::Planner(const Catalog* catalog, const ScalarFunctionRegistry* scalars,
                 const TableUdfRegistry* table_udfs, int num_partitions,
                 double broadcast_threshold_rows)
    : catalog_(catalog),
      scalars_(scalars),
      table_udfs_(table_udfs),
      num_partitions_(num_partitions) {
  options_.broadcast_threshold_rows = broadcast_threshold_rows;
}

Planner::Planner(const Catalog* catalog, const ScalarFunctionRegistry* scalars,
                 const TableUdfRegistry* table_udfs, int num_partitions,
                 const PlannerOptions& options)
    : catalog_(catalog),
      scalars_(scalars),
      table_udfs_(table_udfs),
      num_partitions_(num_partitions),
      options_(options) {}

double Planner::EstimateSelectivity(
    const Expr& expr, const NameScope& scope,
    const std::vector<ColumnStats>& stats) const {
  constexpr double kDefault = 1.0 / 3.0;
  auto column_stats = [&](const Expr& node) -> const ColumnStats* {
    if (node.kind != ExprKind::kColumnRef) return nullptr;
    auto resolved = scope.Resolve(node.qualifier, node.column);
    if (!resolved.ok() || resolved->index < 0 ||
        static_cast<size_t>(resolved->index) >= stats.size()) {
      return nullptr;
    }
    return &stats[static_cast<size_t>(resolved->index)];
  };
  auto clamp = [](double s) { return std::min(1.0, std::max(0.0, s)); };
  switch (expr.kind) {
    case ExprKind::kComparison: {
      const ColumnStats* left = column_stats(*expr.children[0]);
      const ColumnStats* right = column_stats(*expr.children[1]);
      const ColumnStats* col = left != nullptr ? left : right;
      const bool equality = expr.op == "=";
      const bool inequality = expr.op == "!=" || expr.op == "<>";
      if (col == nullptr || col->distinct_values < 1) {
        return equality ? 0.1 : kDefault;
      }
      double ndv = col->distinct_values;
      if (left != nullptr && right != nullptr) {
        ndv = std::max(ndv, std::max(1.0, right->distinct_values));
      }
      if (equality) return clamp(1.0 / ndv);
      if (inequality) return clamp(1.0 - 1.0 / ndv);
      return kDefault;  // Range predicate.
    }
    case ExprKind::kIsNull: {
      const ColumnStats* col = column_stats(*expr.children[0]);
      if (col == nullptr) return expr.is_not_null ? 1.0 - kDefault : kDefault;
      return clamp(expr.is_not_null ? 1.0 - col->null_fraction
                                    : col->null_fraction);
    }
    case ExprKind::kAnd:
      return clamp(EstimateSelectivity(*expr.children[0], scope, stats) *
                   EstimateSelectivity(*expr.children[1], scope, stats));
    case ExprKind::kOr: {
      const double a = EstimateSelectivity(*expr.children[0], scope, stats);
      const double b = EstimateSelectivity(*expr.children[1], scope, stats);
      return clamp(a + b - a * b);
    }
    case ExprKind::kNot:
      return clamp(1.0 -
                   EstimateSelectivity(*expr.children[0], scope, stats));
    case ExprKind::kLiteral:
      if (expr.literal.is_bool()) return expr.literal.bool_value() ? 1.0 : 0.0;
      return kDefault;
    default:
      return kDefault;
  }
}

Result<Value> Planner::EvaluateConstant(const Expr& expr) {
  if (HasColumnRef(expr)) {
    return Status::InvalidArgument(
        "table UDF scalar arguments must be constants: " + expr.ToString());
  }
  NameScope empty;
  ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpression(expr, empty, *scalars_));
  Row no_row;
  return bound->Evaluate(no_row);
}

Result<Planner::RelationPlan> Planner::PlanTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(ref.name));
      auto node = std::make_shared<PlanNode>();
      node->kind = PlanKind::kScan;
      node->table = table;
      node->output_schema = table->schema();
      node->estimated_rows = static_cast<double>(table->TotalRows());
      RelationPlan relation;
      relation.plan = std::move(node);
      relation.scope.AddRelation(ref.BindingName(), table->schema());
      auto stats = catalog_->GetStats(ref.name);
      if (stats.ok()) relation.column_stats = (*stats)->columns;
      return relation;
    }
    case TableRef::Kind::kSubquery: {
      ASSIGN_OR_RETURN(PlanPtr child, PlanSelect(*ref.subquery));
      RelationPlan relation;
      relation.scope.AddRelation(ref.BindingName(), child->output_schema);
      relation.plan = std::move(child);
      return relation;
    }
    case TableRef::Kind::kTableFunction: {
      ASSIGN_OR_RETURN(TableUdfPtr udf, table_udfs_->Create(ref.name));
      PlanPtr input;
      std::vector<Value> scalar_args;
      for (const TableFuncArg& arg : ref.args) {
        if (arg.subquery != nullptr) {
          if (input != nullptr) {
            return Status::InvalidArgument(
                "table UDF takes at most one relation argument: " + ref.name);
          }
          ASSIGN_OR_RETURN(input, PlanSelect(*arg.subquery));
        } else if (arg.expr->kind == ExprKind::kColumnRef &&
                   arg.expr->qualifier.empty() &&
                   catalog_->HasTable(arg.expr->column)) {
          // A bare table name as argument: TABLE(f(carts)) scans carts.
          if (input != nullptr) {
            return Status::InvalidArgument(
                "table UDF takes at most one relation argument: " + ref.name);
          }
          ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(arg.expr->column));
          input = std::make_shared<PlanNode>();
          input->kind = PlanKind::kScan;
          input->table = table;
          input->output_schema = table->schema();
          input->estimated_rows = static_cast<double>(table->TotalRows());
        } else {
          ASSIGN_OR_RETURN(Value value, EvaluateConstant(*arg.expr));
          scalar_args.push_back(std::move(value));
        }
      }
      const SchemaPtr input_schema =
          input == nullptr ? nullptr : input->output_schema;
      auto bound_schema = udf->Bind(input_schema, scalar_args);
      if (!bound_schema.ok()) {
        return bound_schema.status().WithContext("binding table UDF " +
                                                 ref.name);
      }
      auto node = std::make_shared<PlanNode>();
      node->kind = PlanKind::kTableUdf;
      node->udf_name = ref.name;
      node->udf = std::move(udf);
      node->udf_args = std::move(scalar_args);
      node->output_schema = *bound_schema;
      node->estimated_rows =
          input == nullptr ? 1000.0 : input->estimated_rows;
      if (input != nullptr) node->children.push_back(std::move(input));
      RelationPlan relation;
      relation.scope.AddRelation(ref.BindingName(), node->output_schema);
      relation.plan = std::move(node);
      return relation;
    }
  }
  return Status::Internal("unhandled table ref kind");
}

Result<Planner::RelationPlan> Planner::PlanFromWhere(const SelectStmt& stmt) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is required");
  }
  std::vector<RelationPlan> relations;
  relations.reserve(stmt.from.size());
  for (const TableRef& ref : stmt.from) {
    ASSIGN_OR_RETURN(RelationPlan relation, PlanTableRef(ref));
    relations.push_back(std::move(relation));
  }

  const std::vector<ExprPtr> conjuncts = SplitConjuncts(stmt.where);

  // Classify conjuncts: push single-relation predicates down; keep the rest
  // for join conditions / a final filter.
  std::vector<std::vector<ExprPtr>> pushed(relations.size());
  std::vector<ExprPtr> join_level;
  std::vector<ExprPtr> top_level;
  for (const ExprPtr& conjunct : conjuncts) {
    if (!HasColumnRef(*conjunct)) {
      top_level.push_back(conjunct);
      continue;
    }
    int bindable_in = -1;
    int bindable_count = 0;
    for (size_t i = 0; i < relations.size(); ++i) {
      if (BindsWithin(*conjunct, relations[i].scope, *scalars_)) {
        bindable_in = static_cast<int>(i);
        ++bindable_count;
      }
    }
    if (bindable_count == 1) {
      pushed[static_cast<size_t>(bindable_in)].push_back(conjunct);
    } else {
      join_level.push_back(conjunct);
    }
  }

  // Apply pushed filters, scaling cardinality by estimated selectivity and
  // capping downstream NDV estimates at the surviving row count.
  for (size_t i = 0; i < relations.size(); ++i) {
    if (pushed[i].empty()) continue;
    double selectivity = 1.0;
    for (const ExprPtr& conjunct : pushed[i]) {
      selectivity *= EstimateSelectivity(*conjunct, relations[i].scope,
                                         relations[i].column_stats);
    }
    const ExprPtr combined = CombineConjuncts(pushed[i]);
    ASSIGN_OR_RETURN(BoundExprPtr bound,
                     BindExpression(*combined, relations[i].scope, *scalars_));
    auto filter = std::make_shared<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->predicate = std::move(bound);
    filter->output_schema = relations[i].plan->output_schema;
    filter->estimated_rows =
        std::max(1.0, relations[i].plan->estimated_rows * selectivity);
    filter->children.push_back(relations[i].plan);
    relations[i].plan = std::move(filter);
    for (ColumnStats& col : relations[i].column_stats) {
      col.distinct_values =
          std::min(col.distinct_values, relations[i].plan->estimated_rows);
    }
  }

  // Left-deep join chain in FROM order.
  RelationPlan current = std::move(relations[0]);
  std::vector<bool> used(join_level.size(), false);
  for (size_t r = 1; r < relations.size(); ++r) {
    RelationPlan& right = relations[r];
    NameScope combined_scope = current.scope;
    for (int i = 0; i < right.scope.num_relations(); ++i) {
      combined_scope.AddRelation(right.scope.relation_qualifier(i),
                                 right.scope.relation_schema(i));
    }

    std::vector<int> left_keys;
    std::vector<int> right_keys;
    std::vector<ExprPtr> residuals;
    for (size_t c = 0; c < join_level.size(); ++c) {
      if (used[c]) continue;
      const ExprPtr& conjunct = join_level[c];
      if (!BindsWithin(*conjunct, combined_scope, *scalars_)) continue;
      used[c] = true;
      // Equi-join key? `a.x = b.y` with sides on opposite inputs.
      bool is_key = false;
      if (conjunct->kind == ExprKind::kComparison && conjunct->op == "=" &&
          conjunct->children[0]->kind == ExprKind::kColumnRef &&
          conjunct->children[1]->kind == ExprKind::kColumnRef) {
        const Expr& a = *conjunct->children[0];
        const Expr& b = *conjunct->children[1];
        auto a_left = current.scope.Resolve(a.qualifier, a.column);
        auto a_right = right.scope.Resolve(a.qualifier, a.column);
        auto b_left = current.scope.Resolve(b.qualifier, b.column);
        auto b_right = right.scope.Resolve(b.qualifier, b.column);
        if (a_left.ok() && !a_right.ok() && b_right.ok() && !b_left.ok()) {
          left_keys.push_back(a_left->index);
          right_keys.push_back(b_right->index);
          is_key = true;
        } else if (b_left.ok() && !b_right.ok() && a_right.ok() &&
                   !a_left.ok()) {
          left_keys.push_back(b_left->index);
          right_keys.push_back(a_right->index);
          is_key = true;
        }
      }
      if (!is_key) residuals.push_back(conjunct);
    }

    auto join = std::make_shared<PlanNode>();
    join->kind = PlanKind::kHashJoin;
    join->children = {current.plan, right.plan};
    join->left_keys = std::move(left_keys);
    join->right_keys = std::move(right_keys);
    join->broadcast_build =
        right.plan->estimated_rows <= options_.broadcast_threshold_rows;
    if (!residuals.empty()) {
      const ExprPtr combined = CombineConjuncts(residuals);
      ASSIGN_OR_RETURN(join->residual,
                       BindExpression(*combined, combined_scope, *scalars_));
    }
    join->output_schema = combined_scope.FlatSchema();

    // Output cardinality: |L|*|R| / max key NDV when stats know the keys;
    // the pre-stats heuristic max(|L|, |R|) otherwise.
    const double left_rows = std::max(1.0, current.plan->estimated_rows);
    const double right_rows = std::max(1.0, right.plan->estimated_rows);
    double key_ndv = 0;
    for (size_t k = 0; k < join->left_keys.size(); ++k) {
      const size_t li = static_cast<size_t>(join->left_keys[k]);
      const size_t ri = static_cast<size_t>(join->right_keys[k]);
      double pair_ndv = 0;
      if (li < current.column_stats.size()) {
        pair_ndv = current.column_stats[li].distinct_values;
      }
      if (ri < right.column_stats.size()) {
        pair_ndv = std::max(pair_ndv, right.column_stats[ri].distinct_values);
      }
      key_ndv = std::max(key_ndv, pair_ndv);
    }
    if (!join->left_keys.empty() && key_ndv >= 1) {
      join->estimated_rows = std::max(1.0, left_rows * right_rows / key_ndv);
    } else if (join->left_keys.empty()) {
      join->estimated_rows = left_rows * right_rows;  // Cross join.
    } else {
      join->estimated_rows =
          std::max(current.plan->estimated_rows, right.plan->estimated_rows);
    }

    // Hash vs sort-merge: hash unless the build side blows the hash-build
    // memory budget (or the caller forced a strategy). Keyless joins must
    // stay hash — partition-wise merging has no key to align on.
    double build_row_bytes = 0;
    for (const ColumnStats& col : right.column_stats) {
      build_row_bytes += col.avg_bytes;
    }
    if (build_row_bytes <= 0) {
      build_row_bytes =
          16.0 * right.plan->output_schema->num_fields();  // No stats.
    }
    const double build_bytes = right_rows * build_row_bytes;
    if (!join->left_keys.empty() &&
        (options_.join_strategy == JoinStrategy::kSortMerge ||
         (options_.join_strategy == JoinStrategy::kAuto &&
          build_bytes > options_.hash_build_budget_bytes))) {
      join->join_algo = JoinAlgo::kSortMerge;
      join->broadcast_build = false;
    }

    // Flat-schema stats for the joined relation; missing sides padded with
    // unknown-NDV entries so indices keep lining up.
    std::vector<ColumnStats> joined_stats = std::move(current.column_stats);
    joined_stats.resize(
        static_cast<size_t>(join->children[0]->output_schema->num_fields()));
    std::vector<ColumnStats> right_stats = std::move(right.column_stats);
    right_stats.resize(
        static_cast<size_t>(right.plan->output_schema->num_fields()));
    joined_stats.insert(joined_stats.end(), right_stats.begin(),
                        right_stats.end());
    current.plan = std::move(join);
    current.scope = std::move(combined_scope);
    current.column_stats = std::move(joined_stats);
  }

  // Conjuncts that never attached (e.g. constants, ambiguous names).
  for (size_t c = 0; c < join_level.size(); ++c) {
    if (!used[c]) top_level.push_back(join_level[c]);
  }
  if (!top_level.empty()) {
    double selectivity = 1.0;
    for (const ExprPtr& conjunct : top_level) {
      selectivity *=
          EstimateSelectivity(*conjunct, current.scope, current.column_stats);
    }
    const ExprPtr combined = CombineConjuncts(top_level);
    ASSIGN_OR_RETURN(BoundExprPtr bound,
                     BindExpression(*combined, current.scope, *scalars_));
    auto filter = std::make_shared<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->predicate = std::move(bound);
    filter->output_schema = current.plan->output_schema;
    filter->estimated_rows =
        std::max(1.0, current.plan->estimated_rows * selectivity);
    filter->children.push_back(current.plan);
    current.plan = std::move(filter);
  }
  return current;
}

Result<PlanPtr> Planner::PlanSelect(const SelectStmt& stmt) {
  ASSIGN_OR_RETURN(RelationPlan input, PlanFromWhere(stmt));

  // Expand stars and collect select expressions.
  std::vector<SelectItem> items;
  for (const SelectItem& item : stmt.items) {
    if (!item.is_star) {
      items.push_back(item);
      continue;
    }
    for (int r = 0; r < input.scope.num_relations(); ++r) {
      const std::string& qualifier = input.scope.relation_qualifier(r);
      if (!item.star_qualifier.empty() &&
          !EqualsIgnoreCase(item.star_qualifier, qualifier)) {
        continue;
      }
      const SchemaPtr& schema = input.scope.relation_schema(r);
      for (const Field& field : schema->fields()) {
        SelectItem expanded;
        expanded.expr = Expr::MakeColumn(qualifier, field.name);
        expanded.alias = field.name;
        items.push_back(std::move(expanded));
      }
    }
  }
  if (items.empty()) {
    return Status::InvalidArgument("empty select list");
  }

  const bool has_aggregate =
      !stmt.group_by.empty() ||
      std::any_of(items.begin(), items.end(), [](const SelectItem& item) {
        return HasAggregate(*item.expr);
      });

  PlanPtr plan = input.plan;
  if (has_aggregate) {
    auto agg = std::make_shared<PlanNode>();
    agg->kind = PlanKind::kAggregate;
    agg->children.push_back(plan);

    std::vector<Field> out_fields;
    // Bind group keys.
    for (const ExprPtr& key : stmt.group_by) {
      ASSIGN_OR_RETURN(BoundExprPtr bound,
                       BindExpression(*key, input.scope, *scalars_));
      std::string name =
          key->kind == ExprKind::kColumnRef ? key->column : "key";
      out_fields.push_back(Field{name, bound->output_type()});
      agg->group_by.push_back(std::move(bound));
    }
    // Bind aggregate select items; non-aggregate items must match a group
    // key structurally.
    std::vector<int> item_to_output;  // Output column index per select item.
    std::vector<ExprPtr> agg_asts;    // Original AST per aggregate spec.
    for (size_t i = 0; i < items.size(); ++i) {
      const SelectItem& item = items[i];
      if (item.expr->kind == ExprKind::kFunctionCall &&
          IsAggregateFunctionName(item.expr->function_name)) {
        AggregateSpec spec;
        ASSIGN_OR_RETURN(
            spec.func,
            AggFuncFromName(item.expr->function_name,
                            !item.expr->children.empty()));
        DataType arg_type = DataType::kInt64;
        if (!item.expr->children.empty()) {
          ASSIGN_OR_RETURN(
              spec.argument,
              BindExpression(*item.expr->children[0], input.scope, *scalars_));
          arg_type = spec.argument->output_type();
          if (spec.func != AggFunc::kMin && spec.func != AggFunc::kMax &&
              spec.func != AggFunc::kCount && arg_type != DataType::kInt64 &&
              arg_type != DataType::kDouble) {
            return Status::InvalidArgument("aggregate requires numeric arg: " +
                                           item.expr->ToString());
          }
        }
        spec.output_type = AggOutputType(spec.func, arg_type);
        spec.output_name = DeriveOutputName(item, i);
        item_to_output.push_back(-1);  // Aggregates resolved positionally.
        agg_asts.push_back(item.expr);
        agg->aggregates.push_back(std::move(spec));
      } else {
        int key_index = -1;
        for (size_t k = 0; k < stmt.group_by.size(); ++k) {
          if (ExprEquals(*item.expr, *stmt.group_by[k])) {
            key_index = static_cast<int>(k);
            break;
          }
        }
        if (key_index < 0) {
          return Status::InvalidArgument(
              "select item must be an aggregate or appear in GROUP BY: " +
              item.expr->ToString());
        }
        item_to_output.push_back(key_index);
        if (!item.alias.empty()) {
          out_fields[static_cast<size_t>(key_index)].name = item.alias;
        }
      }
    }
    for (const AggregateSpec& spec : agg->aggregates) {
      out_fields.push_back(Field{spec.output_name, spec.output_type});
    }
    agg->output_schema = Schema::Make(std::move(out_fields));
    agg->estimated_rows = std::max(1.0, plan->estimated_rows / 10.0);
    plan = agg;

    if (stmt.having != nullptr) {
      // Rewrite HAVING over the aggregate's output: each aggregate call
      // must structurally match one computed in the SELECT list; group-by
      // expressions resolve to their key columns.
      std::function<Result<ExprPtr>(const Expr&)> rewrite =
          [&](const Expr& node) -> Result<ExprPtr> {
        if (node.kind == ExprKind::kFunctionCall &&
            IsAggregateFunctionName(node.function_name)) {
          for (size_t a = 0; a < agg_asts.size(); ++a) {
            if (ExprEquals(node, *agg_asts[a])) {
              return Expr::MakeColumn("", agg->aggregates[a].output_name);
            }
          }
          return Status::InvalidArgument(
              "aggregate in HAVING must also appear in the SELECT list: " +
              node.ToString());
        }
        for (size_t k = 0; k < stmt.group_by.size(); ++k) {
          if (ExprEquals(node, *stmt.group_by[k])) {
            return Expr::MakeColumn(
                "", plan->output_schema->field(static_cast<int>(k)).name);
          }
        }
        auto copy = std::make_shared<Expr>(node);
        copy->children.clear();
        for (const ExprPtr& child : node.children) {
          ASSIGN_OR_RETURN(ExprPtr rewritten_child, rewrite(*child));
          copy->children.push_back(std::move(rewritten_child));
        }
        return copy;
      };
      ASSIGN_OR_RETURN(ExprPtr rewritten, rewrite(*stmt.having));
      NameScope agg_scope;
      agg_scope.AddRelation("", plan->output_schema);
      ASSIGN_OR_RETURN(BoundExprPtr bound,
                       BindExpression(*rewritten, agg_scope, *scalars_));
      auto filter = std::make_shared<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->predicate = std::move(bound);
      filter->output_schema = plan->output_schema;
      filter->estimated_rows = plan->estimated_rows / 3.0;
      filter->children.push_back(plan);
      plan = filter;
    }

    // Reorder aggregate output into select-list order when needed.
    const int num_keys = static_cast<int>(stmt.group_by.size());
    bool identity = items.size() == static_cast<size_t>(
                                        plan->output_schema->num_fields());
    std::vector<int> out_indices;
    int next_agg = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      const SelectItem& item = items[i];
      const bool is_agg =
          item.expr->kind == ExprKind::kFunctionCall &&
          IsAggregateFunctionName(item.expr->function_name);
      const int out_index =
          is_agg ? num_keys + next_agg++ : item_to_output[i];
      out_indices.push_back(out_index);
      if (out_index != static_cast<int>(i)) identity = false;
    }
    if (!identity) {
      auto project = std::make_shared<PlanNode>();
      project->kind = PlanKind::kProject;
      std::vector<Field> fields;
      for (size_t i = 0; i < items.size(); ++i) {
        const Field& src =
            plan->output_schema->field(out_indices[i]);
        project->projections.push_back(
            MakeColumnReference(out_indices[i], src.type));
        fields.push_back(src);
      }
      project->output_schema = Schema::Make(std::move(fields));
      project->estimated_rows = plan->estimated_rows;
      project->children.push_back(plan);
      plan = project;
    }
  } else {
    // Plain projection. Skip it only when the select list is exactly the
    // input schema in order (SELECT * over a single relation).
    auto project = std::make_shared<PlanNode>();
    project->kind = PlanKind::kProject;
    std::vector<Field> fields;
    for (size_t i = 0; i < items.size(); ++i) {
      ASSIGN_OR_RETURN(BoundExprPtr bound,
                       BindExpression(*items[i].expr, input.scope, *scalars_));
      fields.push_back(
          Field{DeriveOutputName(items[i], i), bound->output_type()});
      project->projections.push_back(std::move(bound));
    }
    project->output_schema = Schema::Make(std::move(fields));
    project->estimated_rows = plan->estimated_rows;
    project->children.push_back(plan);
    plan = project;
  }

  // ORDER BY columns that are not projected are carried as hidden sort
  // columns (appended to the projection, stripped after the sort). This is
  // only possible for plain projections without DISTINCT.
  int hidden_columns = 0;
  if (!stmt.order_by.empty() && !has_aggregate && !stmt.distinct &&
      plan->kind == PlanKind::kProject) {
    std::vector<Field> fields(plan->output_schema->fields());
    for (const OrderItem& item : stmt.order_by) {
      if (item.expr->kind != ExprKind::kColumnRef) continue;
      if (plan->output_schema->FieldIndex(item.expr->column) >= 0) continue;
      auto bound = BindExpression(*item.expr, input.scope, *scalars_);
      if (!bound.ok()) continue;  // Surfaces as an error below.
      fields.push_back(Field{item.expr->column, (*bound)->output_type()});
      plan->projections.push_back(std::move(*bound));
      ++hidden_columns;
    }
    if (hidden_columns > 0) plan->output_schema = Schema::Make(fields);
  }

  if (stmt.distinct) {
    auto distinct = std::make_shared<PlanNode>();
    distinct->kind = PlanKind::kDistinct;
    distinct->output_schema = plan->output_schema;
    distinct->estimated_rows = std::max(1.0, plan->estimated_rows / 2.0);
    distinct->children.push_back(plan);
    plan = distinct;
  }

  if (!stmt.order_by.empty()) {
    auto sort = std::make_shared<PlanNode>();
    sort->kind = PlanKind::kSort;
    sort->output_schema = plan->output_schema;
    sort->estimated_rows = plan->estimated_rows;
    for (const OrderItem& item : stmt.order_by) {
      int index = -1;
      if (item.expr->kind == ExprKind::kColumnRef) {
        index = plan->output_schema->FieldIndex(item.expr->column);
      } else if (item.expr->kind == ExprKind::kLiteral &&
                 item.expr->literal.is_int64()) {
        const int64_t position = item.expr->literal.int64_value();
        if (position >= 1 &&
            position <= plan->output_schema->num_fields()) {
          index = static_cast<int>(position) - 1;
        }
      }
      if (index < 0) {
        return Status::InvalidArgument(
            "ORDER BY must name an output column: " + item.expr->ToString());
      }
      sort->sort_keys.push_back(index);
      sort->sort_descending.push_back(item.descending);
    }
    sort->children.push_back(plan);
    plan = sort;
  }

  if (hidden_columns > 0) {
    // Strip the hidden sort columns.
    auto strip = std::make_shared<PlanNode>();
    strip->kind = PlanKind::kProject;
    const int kept = plan->output_schema->num_fields() - hidden_columns;
    std::vector<Field> fields;
    for (int i = 0; i < kept; ++i) {
      const Field& field = plan->output_schema->field(i);
      strip->projections.push_back(MakeColumnReference(i, field.type));
      fields.push_back(field);
    }
    strip->output_schema = Schema::Make(std::move(fields));
    strip->estimated_rows = plan->estimated_rows;
    strip->children.push_back(plan);
    plan = strip;
  }

  if (stmt.limit >= 0) {
    auto limit = std::make_shared<PlanNode>();
    limit->kind = PlanKind::kLimit;
    limit->output_schema = plan->output_schema;
    limit->limit = stmt.limit;
    limit->estimated_rows =
        std::min(plan->estimated_rows, static_cast<double>(stmt.limit));
    limit->children.push_back(plan);
    plan = limit;
  }
  return plan;
}

}  // namespace sqlink
