#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace sqlink {

namespace {

/// The thread's open span, or {0,0} when none. A *suppressed* open span
/// (unsampled trace) is {0, 1}: "a span is open, record nothing beneath it"
/// — without the sentinel every child of an unsampled root would re-roll the
/// sampling die and start its own trace.
thread_local TraceContext tls_current;

constexpr TraceContext kSuppressed{0, 1};

bool IsOpen(const TraceContext& context) {
  return context.trace_id != 0 || context.span_id != 0;
}

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer() : sample_rng_state_(0x9e3779b97f4a7c15ull) {
  const char* env = std::getenv("SQLINK_TRACE");
  if (env != nullptr && *env != '\0') {
    const std::string value(env);
    if (value.rfind("json:", 0) == 0) {
      sink_path_ = value.substr(5);
      enabled_.store(true, std::memory_order_relaxed);
    } else if (value == "on" || value == "1") {
      enabled_.store(true, std::memory_order_relaxed);
    }
  }
  const char* sample = std::getenv("SQLINK_TRACE_SAMPLE");
  if (sample != nullptr && *sample != '\0') {
    char* end = nullptr;
    const double p = std::strtod(sample, &end);
    if (end != sample && *end == '\0' && p >= 0.0 && p <= 1.0) {
      sample_probability_ = p;
    }
  }
  auto positive_env = [](const char* name, int64_t* out) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return;
    char* end = nullptr;
    const long long parsed = std::strtoll(value, &end, 10);
    if (end != value && *end == '\0' && parsed > 0) *out = parsed;
  };
  int64_t ring = 0;
  positive_env("SQLINK_TRACE_RING", &ring);
  if (ring > 0) ring_capacity_ = static_cast<size_t>(ring);
  positive_env("SQLINK_TRACE_FLUSH_SPANS", &flush_span_threshold_);
  int64_t flush_ms = 0;
  positive_env("SQLINK_TRACE_FLUSH_MS", &flush_ms);
  if (flush_ms > 0) flush_interval_micros_ = flush_ms * 1000;
  if (!sink_path_.empty()) {
    std::atexit([] { Tracer::Global().FlushToConfiguredSink(); });
  }
}

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::set_sample_probability(double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  sample_probability_ = probability < 0.0   ? 0.0
                        : probability > 1.0 ? 1.0
                                            : probability;
}

double Tracer::sample_probability() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sample_probability_;
}

TraceContext Tracer::CurrentContext() {
  return tls_current.valid() ? tls_current : TraceContext{};
}

TraceContext Tracer::SetAmbientContext(TraceContext context) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceContext previous = ambient_;
  ambient_ = context;
  return previous;
}

TraceContext Tracer::ambient_context() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ambient_;
}

void Tracer::Record(SpanRecord record) {
  // The flush decision happens under the lock; the flush itself happens
  // after releasing it (WriteJson re-enters ToJson, which takes mu_).
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(record));
    while (spans_.size() > ring_capacity_) spans_.pop_front();
    if (!sink_path_.empty()) {
      ++recorded_since_flush_;
      const int64_t now = NowMicros();
      if (recorded_since_flush_ >= flush_span_threshold_ ||
          now - last_flush_micros_ >= flush_interval_micros_) {
        flush = true;
        recorded_since_flush_ = 0;
        last_flush_micros_ = now;
      }
    }
  }
  if (flush) FlushToConfiguredSink();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SpanRecord>(spans_.begin(), spans_.end());
}

std::vector<SpanRecord> Tracer::Recent(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  const size_t take = std::min(n, spans_.size());
  out.reserve(take);
  for (auto it = spans_.rbegin(); it != spans_.rend() && out.size() < take;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

void Tracer::set_ring_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = capacity == 0 ? 1 : capacity;
  while (spans_.size() > ring_capacity_) spans_.pop_front();
}

size_t Tracer::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

void Tracer::ConfigureSink(const std::string& path, int64_t flush_spans,
                           int64_t flush_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_path_ = path;
  if (flush_spans > 0) flush_span_threshold_ = flush_spans;
  if (flush_ms > 0) flush_interval_micros_ = flush_ms * 1000;
  recorded_since_flush_ = 0;
  last_flush_micros_ = NowMicros();
  if (!path.empty()) enabled_.store(true, std::memory_order_relaxed);
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  ambient_ = TraceContext{};
}

std::string Tracer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  bool first_span = true;
  for (const SpanRecord& span : spans_) {
    if (!first_span) out.push_back(',');
    first_span = false;
    out += "{\"name\":";
    AppendJsonString(span.name, &out);
    // Ids as strings: uint64 does not survive a double-typed JSON reader.
    out += ",\"trace_id\":\"" + std::to_string(span.trace_id) +
           "\",\"span_id\":\"" + std::to_string(span.span_id) +
           "\",\"parent_span_id\":\"" + std::to_string(span.parent_span_id) +
           "\",\"start_micros\":" + std::to_string(span.start_micros) +
           ",\"duration_micros\":" + std::to_string(span.duration_micros) +
           ",\"error\":" + (span.error ? "true" : "false");
    if (!span.attributes.empty()) {
      out += ",\"attributes\":{";
      bool first_attr = true;
      for (const auto& [key, value] : span.attributes) {
        if (!first_attr) out.push_back(',');
        first_attr = false;
        AppendJsonString(key, &out);
        out.push_back(':');
        out += std::to_string(value);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

bool Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

bool Tracer::FlushToConfiguredSink() const {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = sink_path_;
  }
  if (path.empty()) return false;
  return WriteJson(path);
}

uint64_t Tracer::NextTraceId() {
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return id == 0 ? next_id_.fetch_add(1, std::memory_order_relaxed) : id;
}

uint64_t Tracer::NextSpanId() { return NextTraceId(); }

bool Tracer::SampleNewTrace() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sample_probability_ >= 1.0) return true;
  if (sample_probability_ <= 0.0) return false;
  // xorshift64: cheap, deterministic per process.
  uint64_t x = sample_rng_state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  sample_rng_state_ = x;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < sample_probability_;
}

int64_t Tracer::NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point process_start = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               process_start)
      .count();
}

TraceSpan::TraceSpan(std::string name) { Start(std::move(name), nullptr); }

TraceSpan::TraceSpan(std::string name, const TraceContext& parent) {
  Start(std::move(name), &parent);
}

void TraceSpan::Start(std::string name, const TraceContext* explicit_parent) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;

  TraceContext parent;
  bool parent_suppressed = false;
  if (explicit_parent != nullptr && explicit_parent->valid()) {
    parent = *explicit_parent;
  } else if (IsOpen(tls_current)) {
    if (tls_current.valid()) {
      parent = tls_current;
    } else {
      parent_suppressed = true;
    }
  } else if (tracer.ambient_context().valid()) {
    parent = tracer.ambient_context();
  }

  if (parent_suppressed) {
    context_ = kSuppressed;
  } else if (parent.valid()) {
    context_ = TraceContext{parent.trace_id, tracer.NextSpanId()};
    record_.parent_span_id = parent.span_id;
    recording_ = true;
  } else if (tracer.SampleNewTrace()) {
    context_ = TraceContext{tracer.NextTraceId(), tracer.NextSpanId()};
    recording_ = true;
  } else {
    context_ = kSuppressed;
  }

  previous_current_ = tls_current;
  tls_current = context_;
  pushed_ = true;

  if (recording_) {
    record_.name = std::move(name);
    record_.trace_id = context_.trace_id;
    record_.span_id = context_.span_id;
    record_.start_micros = Tracer::NowMicros();
    record_.error = false;
  }
}

void TraceSpan::AddAttribute(std::string key, int64_t value) {
  if (!recording_ || ended_) return;
  record_.attributes.emplace_back(std::move(key), value);
}

void TraceSpan::SetError() {
  if (recording_ && !ended_) record_.error = true;
}

void TraceSpan::End() {
  if (ended_) return;
  ended_ = true;
  if (pushed_) tls_current = previous_current_;
  if (!recording_) return;
  record_.duration_micros = Tracer::NowMicros() - record_.start_micros;
  Tracer::Global().Record(std::move(record_));
}

}  // namespace sqlink
