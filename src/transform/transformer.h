#ifndef SQLINK_TRANSFORM_TRANSFORMER_H_
#define SQLINK_TRANSFORM_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/engine.h"
#include "transform/recode_map.h"

namespace sqlink {

/// High-level driver of the In-SQL recoding (§2.1): composes and executes
/// the UDF-based two-phase distributed algorithm on a SqlEngine.
class InSqlTransformer {
 public:
  /// Registers the transform UDFs on the engine (idempotent).
  explicit InSqlTransformer(SqlEnginePtr engine);

  /// SQL of the recode-map computation: one parallel UDF scan collecting
  /// local distincts of all columns, a global SELECT DISTINCT, and the
  /// code-assigning UDF over the gathered sorted result.
  static std::string BuildRecodeMapSql(const std::string& prep_query,
                                       const std::vector<std::string>& columns);

  /// Runs the two-phase algorithm; when `register_as` is non-empty the map
  /// table is stored in the catalog under that name (cacheable, §5.2).
  Result<RecodeMap> ComputeRecodeMap(const std::string& prep_query,
                                     const std::vector<std::string>& columns,
                                     const std::string& register_as = "");

  /// The §2.1 alternative the paper argues against: one SELECT DISTINCT
  /// query per column — one full pass of the data per categorical column.
  /// Used by the recode-strategy ablation benchmark.
  Result<RecodeMap> ComputeRecodeMapPerColumnSql(
      const std::string& prep_query, const std::vector<std::string>& columns,
      const std::string& register_as = "");

  const SqlEnginePtr& engine() const { return engine_; }

 private:
  SqlEnginePtr engine_;
};

}  // namespace sqlink

#endif  // SQLINK_TRANSFORM_TRANSFORMER_H_
