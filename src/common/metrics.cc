#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sqlink {

namespace {

/// JSON number formatting for percentile estimates: fixed two decimals is
/// plenty for latency values and keeps the dumps diffable.
std::string JsonDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

double Histogram::Snapshot::Percentile(double quantile) const {
  if (count <= 0) return 0.0;
  if (quantile <= 0.0) return static_cast<double>(min);
  if (quantile >= 1.0) return static_cast<double>(max);
  const double target = quantile * static_cast<double>(count);
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate linearly inside the bucket, clamped to the observed
      // extrema so a single-bucket distribution reports sensible values.
      double lower = i == 0 ? 0.0 : static_cast<double>(BucketUpperBound(i - 1));
      double upper = static_cast<double>(BucketUpperBound(i));
      lower = std::max(lower, static_cast<double>(min));
      upper = std::min(upper, static_cast<double>(max));
      if (upper < lower) upper = lower;
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + fraction * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index >= kNumBounds) return INT64_MAX;
  return int64_t{1} << index;
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snapshot;
  for (int i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    snapshot.count += snapshot.buckets[static_cast<size_t>(i)];
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  const int64_t min = min_.load(std::memory_order_relaxed);
  const int64_t max = max_.load(std::memory_order_relaxed);
  snapshot.min = snapshot.count == 0 ? 0 : min;
  snapshot.max = snapshot.count == 0 ? 0 : max;
  snapshot.p50 = snapshot.Percentile(0.50);
  snapshot.p95 = snapshot.Percentile(0.95);
  snapshot.p99 = snapshot.Percentile(0.99);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::map<std::string, int64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out += std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out += ":{\"value\":" + std::to_string(gauge->value()) +
           ",\"max\":" + std::to_string(gauge->max_value()) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->GetSnapshot();
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out += ":{\"count\":" + std::to_string(s.count) +
           ",\"sum\":" + std::to_string(s.sum) +
           ",\"min\":" + std::to_string(s.min) +
           ",\"max\":" + std::to_string(s.max) + ",\"p50\":" + JsonDouble(s.p50) +
           ",\"p95\":" + JsonDouble(s.p95) + ",\"p99\":" + JsonDouble(s.p99) +
           "}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  size_t width = 0;
  for (const auto& [name, unused] : counters_) width = std::max(width, name.size());
  for (const auto& [name, unused] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, unused] : histograms_) width = std::max(width, name.size());
  auto pad = [&](const std::string& name) {
    out << name << std::string(width - name.size() + 2, ' ');
  };
  for (const auto& [name, counter] : counters_) {
    pad(name);
    out << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    pad(name);
    out << gauge->value() << " (max " << gauge->max_value() << ")\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->GetSnapshot();
    pad(name);
    out << "count=" << s.count << " min=" << s.min << " max=" << s.max
        << " p50=" << JsonDouble(s.p50) << " p95=" << JsonDouble(s.p95)
        << " p99=" << JsonDouble(s.p99) << "\n";
  }
  return out.str();
}

namespace {

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names use
/// dots (`stream.wire.frames_sent`); map every non-alphanumeric rune to an
/// underscore and prefix the exporter namespace.
std::string PrometheusName(const std::string& name) {
  std::string out = "sqlink_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->value()) + "\n";
    out += "# TYPE " + prom + "_max gauge\n";
    out += prom + "_max " + std::to_string(gauge->max_value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->GetSnapshot();
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "{quantile=\"0.5\"} " + PrometheusDouble(s.p50) + "\n";
    out += prom + "{quantile=\"0.95\"} " + PrometheusDouble(s.p95) + "\n";
    out += prom + "{quantile=\"0.99\"} " + PrometheusDouble(s.p99) + "\n";
    out += prom + "_sum " + std::to_string(s.sum) + "\n";
    out += prom + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

bool MetricsRegistry::DumpIfConfigured() const {
  const char* path = std::getenv("SQLINK_METRICS_DUMP");
  if (path == nullptr || *path == '\0') return false;
  return WriteJson(path);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = [] {
    auto* r = new MetricsRegistry();
    const char* path = std::getenv("SQLINK_METRICS_DUMP");
    if (path != nullptr && *path != '\0') {
      std::atexit([] { MetricsRegistry::Global().DumpIfConfigured(); });
    }
    return r;
  }();
  return *registry;
}

}  // namespace sqlink
