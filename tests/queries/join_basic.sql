SELECT e.k, d.label FROM e1023 e JOIN dims d ON e.k = d.k
