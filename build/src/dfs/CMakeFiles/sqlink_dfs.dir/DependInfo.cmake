
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/dfs.cc" "src/dfs/CMakeFiles/sqlink_dfs.dir/dfs.cc.o" "gcc" "src/dfs/CMakeFiles/sqlink_dfs.dir/dfs.cc.o.d"
  "/root/repo/src/dfs/line_reader.cc" "src/dfs/CMakeFiles/sqlink_dfs.dir/line_reader.cc.o" "gcc" "src/dfs/CMakeFiles/sqlink_dfs.dir/line_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sqlink_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
