#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace sqlink {
namespace {

TEST(LexerTest, TokenizesTheExampleQuery) {
  auto tokens = Tokenize(
      "SELECT U.age, U.gender, C.amount, C.abandoned "
      "FROM carts C, users U "
      "WHERE C.userid=U.userid AND U.country='USA'");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  EXPECT_EQ(tokens->front().type, TokenType::kKeyword);
  EXPECT_EQ(tokens->front().text, "SELECT");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringErrors) {
  EXPECT_TRUE(Tokenize("SELECT 'oops").status().IsParseError());
}

TEST(LexerTest, NumbersAndOperators) {
  auto tokens = Tokenize("1 2.5 1e3 <= >= <> != = < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDouble);
  EXPECT_EQ((*tokens)[2].type, TokenType::kDouble);
  EXPECT_EQ((*tokens)[3].text, "<=");
  EXPECT_EQ((*tokens)[4].text, ">=");
  EXPECT_EQ((*tokens)[5].text, "<>");
  EXPECT_EQ((*tokens)[6].text, "!=");
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(ParserTest, ExampleQueryShape) {
  auto stmt = ParseSelect(
      "SELECT U.age, U.gender, C.amount, C.abandoned "
      "FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->items.size(), 4u);
  EXPECT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0].name, "carts");
  EXPECT_EQ(stmt->from[0].alias, "C");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(SplitConjuncts(stmt->where).size(), 2u);
}

TEST(ParserTest, DistinctAndAliases) {
  auto stmt = ParseSelect(
      "SELECT DISTINCT colName, colVal AS v FROM locals");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->distinct);
  EXPECT_EQ(stmt->items[1].alias, "v");
}

TEST(ParserTest, StarVariants) {
  auto stmt = ParseSelect("SELECT *, t.* FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->items[0].is_star);
  EXPECT_TRUE(stmt->items[0].star_qualifier.empty());
  EXPECT_TRUE(stmt->items[1].is_star);
  EXPECT_EQ(stmt->items[1].star_qualifier, "t");
}

TEST(ParserTest, GroupOrderLimit) {
  auto stmt = ParseSelect(
      "SELECT gender, COUNT(*) AS n FROM users GROUP BY gender "
      "ORDER BY n DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, TableFunctionWithSubqueryArg) {
  auto stmt = ParseSelect(
      "SELECT * FROM TABLE(recode_local_distinct("
      "(SELECT gender, abandoned FROM carts), 'gender,abandoned'))");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].kind, TableRef::Kind::kTableFunction);
  EXPECT_EQ(stmt->from[0].name, "recode_local_distinct");
  ASSERT_EQ(stmt->from[0].args.size(), 2u);
  EXPECT_NE(stmt->from[0].args[0].subquery, nullptr);
  EXPECT_NE(stmt->from[0].args[1].expr, nullptr);
}

TEST(ParserTest, SubqueryInFromRequiresAlias) {
  EXPECT_TRUE(
      ParseSelect("SELECT * FROM (SELECT a FROM t)").status().IsParseError());
  EXPECT_TRUE(ParseSelect("SELECT * FROM (SELECT a FROM t) sub").ok());
}

TEST(ParserTest, OperatorPrecedence) {
  auto expr = ParseExpression("a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(expr.ok());
  // OR binds loosest.
  EXPECT_EQ((*expr)->kind, ExprKind::kOr);
  auto arith = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(arith.ok());
  EXPECT_EQ((*arith)->kind, ExprKind::kArithmetic);
  EXPECT_EQ((*arith)->op, "+");
  EXPECT_EQ((*arith)->children[1]->op, "*");
}

TEST(ParserTest, BetweenDesugarsToConjunction) {
  auto expr = ParseExpression("age BETWEEN 18 AND 65");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kAnd);
  EXPECT_EQ((*expr)->children[0]->op, ">=");
  EXPECT_EQ((*expr)->children[1]->op, "<=");
}

TEST(ParserTest, IsNullForms) {
  auto e1 = ParseExpression("x IS NULL");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ((*e1)->kind, ExprKind::kIsNull);
  EXPECT_FALSE((*e1)->is_not_null);
  auto e2 = ParseExpression("x IS NOT NULL");
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE((*e2)->is_not_null);
}

TEST(ParserTest, InListDesugaring) {
  auto expr = ParseExpression("x IN ('a', 'b', 'c')");
  ASSERT_TRUE(expr.ok()) << expr.status();
  // OR of equalities.
  EXPECT_EQ((*expr)->kind, ExprKind::kOr);
  auto negated = ParseExpression("x NOT IN (1, 2)");
  ASSERT_TRUE(negated.ok());
  EXPECT_EQ((*negated)->kind, ExprKind::kAnd);
  EXPECT_EQ((*negated)->children[0]->op, "<>");
  auto single = ParseExpression("x IN (5)");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ((*single)->kind, ExprKind::kComparison);
  EXPECT_TRUE(ParseExpression("x IN ()").status().IsParseError());
}

TEST(ParserTest, HavingClause) {
  auto stmt = ParseSelect(
      "SELECT gender, COUNT(*) FROM users GROUP BY gender "
      "HAVING COUNT(*) > 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_NE(stmt->having, nullptr);
  EXPECT_EQ(stmt->having->op, ">");
  // Renders back and reparses.
  auto again = ParseSelect(stmt->ToString());
  ASSERT_TRUE(again.ok()) << stmt->ToString();
  EXPECT_NE(again->having, nullptr);
}

TEST(ParserTest, ExplicitJoinSyntax) {
  auto stmt = ParseSelect(
      "SELECT a.x FROM t1 a JOIN t2 b ON a.k = b.k "
      "INNER JOIN t3 c ON b.k = c.k WHERE a.x > 0");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->from.size(), 3u);
  // ON conditions merged into WHERE as conjuncts.
  EXPECT_EQ(SplitConjuncts(stmt->where).size(), 3u);
}

TEST(ParserTest, NotEqualsNormalized) {
  auto expr = ParseExpression("a != 5");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->op, "<>");
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t garbage garbage")
                  .status()
                  .IsParseError());
}

TEST(ParserTest, SemicolonAccepted) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t;").ok());
}

TEST(AstTest, ToStringRoundTripsThroughParser) {
  const std::string queries[] = {
      "SELECT U.age, U.gender FROM carts C, users U WHERE C.userid = "
      "U.userid AND U.country = 'USA'",
      "SELECT DISTINCT colname, colval FROM locals ORDER BY colname LIMIT 5",
      "SELECT gender, COUNT(*) AS n FROM users GROUP BY gender",
      "SELECT * FROM TABLE(dummy_code((SELECT a FROM t), 'gender', 2))",
  };
  for (const std::string& q : queries) {
    auto stmt1 = ParseSelect(q);
    ASSERT_TRUE(stmt1.ok()) << q << ": " << stmt1.status();
    const std::string rendered = stmt1->ToString();
    auto stmt2 = ParseSelect(rendered);
    ASSERT_TRUE(stmt2.ok()) << rendered << ": " << stmt2.status();
    EXPECT_EQ(rendered, stmt2->ToString());
  }
}

TEST(AstTest, ExprEqualsStructural) {
  auto a = ParseExpression("U.country = 'USA' AND age < 30");
  auto b = ParseExpression("u.COUNTRY = 'USA' AND age < 30");
  auto c = ParseExpression("U.country = 'usa' AND age < 30");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(ExprEquals(**a, **b));   // Identifiers case-insensitive.
  EXPECT_FALSE(ExprEquals(**a, **c));  // Literals case-sensitive.
}

TEST(AstTest, SplitAndCombineConjuncts) {
  auto expr = ParseExpression("a = 1 AND b = 2 AND c = 3");
  ASSERT_TRUE(expr.ok());
  auto conjuncts = SplitConjuncts(*expr);
  EXPECT_EQ(conjuncts.size(), 3u);
  auto combined = CombineConjuncts(conjuncts);
  EXPECT_EQ(SplitConjuncts(combined).size(), 3u);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
}

TEST(AstTest, LiteralRenderingEscapesQuotes) {
  auto expr = Expr::MakeLiteral(Value::String("it's"));
  EXPECT_EQ(expr->ToString(), "'it''s'");
}

}  // namespace
}  // namespace sqlink
