// Ablation A6: microbenchmarks of the transformation primitives —
// recoding-map application, the three coding schemes, CSV codec and the
// binary row codec (google-benchmark).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "table/csv.h"
#include "table/row_codec.h"
#include "transform/coding.h"
#include "transform/recode_map.h"

namespace sqlink {
namespace {

Row MakeRow(Random* rng) {
  return Row{Value::Int64(rng->UniformInt(16, 90)),
             Value::String(rng->Bernoulli(0.5) ? "F" : "M"),
             Value::Double(rng->NextDouble() * 500),
             Value::String(rng->Bernoulli(0.4) ? "Yes" : "No")};
}

void BM_RecodeMapLookup(benchmark::State& state) {
  RecodeMap map;
  (void)map.Add("gender", "F", 1);
  (void)map.Add("gender", "M", 2);
  (void)map.Add("abandoned", "Yes", 1);
  (void)map.Add("abandoned", "No", 2);
  Random rng(7);
  int64_t rows = 0;
  for (auto _ : state) {
    const std::string value = rng.Bernoulli(0.5) ? "F" : "M";
    benchmark::DoNotOptimize(map.Code("gender", value));
    ++rows;
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_RecodeMapLookup);

void BM_CodingMatrix(benchmark::State& state) {
  const auto scheme = static_cast<CodingScheme>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CodingMatrix(scheme, k));
  }
}
BENCHMARK(BM_CodingMatrix)
    ->Args({static_cast<int>(CodingScheme::kDummy), 8})
    ->Args({static_cast<int>(CodingScheme::kEffect), 8})
    ->Args({static_cast<int>(CodingScheme::kOrthogonal), 8})
    ->Args({static_cast<int>(CodingScheme::kOrthogonal), 64});

void BM_DummyCodeRow(benchmark::State& state) {
  // Apply a k-level dummy coding to a stream of recoded values.
  const int k = static_cast<int>(state.range(0));
  const auto matrix = CodingMatrix(CodingScheme::kDummy, k);
  Random rng(11);
  int64_t rows = 0;
  for (auto _ : state) {
    const int level = static_cast<int>(rng.UniformInt(1, k));
    Row out;
    for (double v : (*matrix)[static_cast<size_t>(level - 1)]) {
      out.push_back(Value::Int64(static_cast<int64_t>(v)));
    }
    benchmark::DoNotOptimize(out);
    ++rows;
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_DummyCodeRow)->Arg(2)->Arg(8)->Arg(32);

void BM_CsvFormatRow(benchmark::State& state) {
  CsvCodec codec;
  Random rng(3);
  Row row = MakeRow(&rng);
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string line = codec.FormatRow(row);
    bytes += static_cast<int64_t>(line.size());
    benchmark::DoNotOptimize(line);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_CsvFormatRow);

void BM_CsvParseRow(benchmark::State& state) {
  CsvCodec codec;
  Schema schema({{"age", DataType::kInt64},
                 {"gender", DataType::kString},
                 {"amount", DataType::kDouble},
                 {"abandoned", DataType::kString}});
  Random rng(3);
  const std::string line = codec.FormatRow(MakeRow(&rng));
  int64_t bytes = 0;
  for (auto _ : state) {
    auto row = codec.ParseRow(line, schema);
    bytes += static_cast<int64_t>(line.size());
    benchmark::DoNotOptimize(row);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_CsvParseRow);

void BM_RowCodecEncode(benchmark::State& state) {
  Random rng(5);
  Row row = MakeRow(&rng);
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string buffer;
    RowCodec::Encode(row, &buffer);
    bytes += static_cast<int64_t>(buffer.size());
    benchmark::DoNotOptimize(buffer);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_RowCodecEncode);

void BM_RowCodecDecode(benchmark::State& state) {
  Random rng(5);
  std::string buffer;
  RowCodec::Encode(MakeRow(&rng), &buffer);
  int64_t bytes = 0;
  for (auto _ : state) {
    Decoder decoder(buffer);
    auto row = RowCodec::Decode(&decoder);
    bytes += static_cast<int64_t>(buffer.size());
    benchmark::DoNotOptimize(row);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_RowCodecDecode);

}  // namespace
}  // namespace sqlink

BENCHMARK_MAIN();
