file(REMOVE_RECURSE
  "CMakeFiles/sqlink_cluster.dir/cluster.cc.o"
  "CMakeFiles/sqlink_cluster.dir/cluster.cc.o.d"
  "libsqlink_cluster.a"
  "libsqlink_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
