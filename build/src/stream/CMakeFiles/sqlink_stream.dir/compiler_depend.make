# Empty compiler generated dependencies file for sqlink_stream.
# This may be replaced when dependencies are built.
