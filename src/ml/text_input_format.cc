#include "ml/text_input_format.h"

#include "common/status_macros.h"
#include "dfs/line_reader.h"

namespace sqlink::ml {

namespace {

/// Parses each line of a split into a typed row.
class TextRecordReader final : public RecordReader {
 public:
  TextRecordReader(std::unique_ptr<DfsLineReader> lines, const CsvCodec* codec,
                   SchemaPtr schema)
      : lines_(std::move(lines)), codec_(codec), schema_(std::move(schema)) {}

  Result<bool> Next(Row* out) override {
    std::string line;
    if (!lines_->Next(&line)) {
      RETURN_IF_ERROR(lines_->status());
      return false;
    }
    ASSIGN_OR_RETURN(*out, codec_->ParseRow(line, *schema_));
    return true;
  }

 private:
  std::unique_ptr<DfsLineReader> lines_;
  const CsvCodec* codec_;
  SchemaPtr schema_;
};

}  // namespace

TextFileInputFormat::TextFileInputFormat(DfsPtr dfs, std::string path,
                                         SchemaPtr schema, char delimiter)
    : dfs_(std::move(dfs)),
      path_(std::move(path)),
      schema_(std::move(schema)),
      codec_(delimiter) {}

Result<std::vector<InputSplitPtr>> TextFileInputFormat::GetSplits(
    const JobContext& context) {
  std::vector<std::string> files;
  if (dfs_->Exists(path_)) {
    files.push_back(path_);
  } else {
    files = dfs_->List(path_);
  }
  if (files.empty()) {
    return Status::NotFound("no DFS input at " + path_);
  }
  std::vector<InputSplitPtr> splits;
  for (const std::string& file : files) {
    ASSIGN_OR_RETURN(std::vector<BlockLocation> blocks,
                     dfs_->GetBlockLocations(file));
    for (const BlockLocation& block : blocks) {
      std::vector<std::string> hosts;
      hosts.reserve(block.nodes.size());
      for (int node : block.nodes) {
        hosts.push_back(context.cluster != nullptr
                            ? context.cluster->HostName(node)
                            : "node" + std::to_string(node));
      }
      splits.push_back(std::make_shared<FileSplit>(
          file, block.offset, block.offset + block.length, std::move(hosts)));
    }
  }
  return splits;
}

Result<std::unique_ptr<RecordReader>> TextFileInputFormat::CreateReader(
    const JobContext& context, const InputSplit& split, int worker_id) {
  const auto* file_split = dynamic_cast<const FileSplit*>(&split);
  if (file_split == nullptr) {
    return Status::InvalidArgument("TextFileInputFormat needs a FileSplit");
  }
  // The reader runs on the worker's node; pass it for replica selection.
  int reader_node = -1;
  if (context.cluster != nullptr) {
    const auto locations = file_split->Locations();
    if (!locations.empty()) {
      reader_node = context.cluster->NodeFromHostName(
          locations[static_cast<size_t>(worker_id) % locations.size()]);
    }
  }
  ASSIGN_OR_RETURN(std::unique_ptr<DfsReader> reader,
                   dfs_->Open(file_split->path(), reader_node));
  auto lines = std::make_unique<DfsLineReader>(
      std::move(reader), file_split->start(), file_split->end());
  return std::unique_ptr<RecordReader>(
      new TextRecordReader(std::move(lines), &codec_, schema_));
}

}  // namespace sqlink::ml
