#include "common/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace sqlink {

std::optional<std::chrono::milliseconds> RetryPolicy::NextDelay() {
  if (exhausted_) return std::nullopt;
  if (options_.max_attempts > 0 && attempts_ >= options_.max_attempts) {
    exhausted_ = true;
    return std::nullopt;
  }
  const int64_t remaining =
      static_cast<int64_t>(options_.deadline_ms) - total_delay_ms_;
  if (remaining <= 0) {
    exhausted_ = true;
    return std::nullopt;
  }
  double base = static_cast<double>(std::max(1, options_.initial_delay_ms)) *
                std::pow(std::max(1.0, options_.multiplier), attempts_);
  base = std::min(base, static_cast<double>(std::max(1, options_.max_delay_ms)));
  double factor = 1.0;
  if (options_.jitter > 0.0) {
    factor += options_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  int64_t delay_ms = std::llround(base * factor);
  delay_ms = std::clamp<int64_t>(delay_ms, 1, remaining);
  ++attempts_;
  total_delay_ms_ += delay_ms;
  return std::chrono::milliseconds(delay_ms);
}

bool RetryPolicy::Backoff() {
  const auto delay = NextDelay();
  if (!delay.has_value()) return false;
  std::this_thread::sleep_for(*delay);
  return true;
}

}  // namespace sqlink
