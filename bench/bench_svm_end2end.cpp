// §7 text reproduction: "reading the transformed data from HDFS and running
// the SVMWithSGD for 10 iterations took 774 seconds" (of which ~46 s were
// the HDFS read) — i.e. once a long-running ML algorithm dominates, the
// choice of transfer mechanism matters little, which the paper concedes.
//
// Here: transformed data is materialized on the DFS; the bench reads it
// back through TextFileInputFormat and trains SVMWithSGD for 10 iterations,
// reporting the read/train split, then repeats the end-to-end run with
// streaming to show the shrinking relative benefit.

#include "bench_util.h"
#include "common/stopwatch.h"
#include "ml/classifiers.h"
#include "ml/scaler.h"
#include "ml/text_input_format.h"
#include "pipeline/table_io.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 400000);
  auto env = BenchEnv::Make(rows);
  const TransformRequest request = BenchEnv::PaperRequest();

  std::printf("=== SVMWithSGD end-to-end (10 iterations) ===\n");
  std::printf("carts rows: %lld\n\n", static_cast<long long>(rows));

  // Produce and materialize the transformed data on DFS.
  QueryRewriter rewriter(env->engine, nullptr);
  auto rewrite = rewriter.RewriteWithCache(request);
  if (!rewrite.ok()) return 1;
  auto transformed = env->engine->ExecuteSql(rewrite->transformed_sql);
  if (!transformed.ok()) return 1;
  auto written = WriteTableToDfs(env->dfs.get(), **transformed, "svm_input");
  if (!written.ok()) return 1;

  // Stage 1: read from DFS into the in-memory dataset.
  Stopwatch read_watch;
  ml::TextFileInputFormat format(env->dfs, "svm_input",
                                 (*transformed)->schema());
  ml::JobContext context;
  context.cluster = env->cluster;
  ml::MlJobRunner runner(context);
  auto ingest = runner.Ingest(&format);
  if (!ingest.ok()) return 1;
  const double read_seconds = read_watch.ElapsedSeconds();

  auto dataset =
      ml::Dataset::FromRowsAutoFeatures(ingest->dataset, "abandoned");
  if (!dataset.ok()) return 1;
  for (auto& partition : dataset->mutable_partitions()) {
    for (ml::LabeledPoint& point : partition) {
      point.label = point.label <= 1.0 ? 0.0 : 1.0;
    }
  }
  auto scaler = ml::StandardScaler::Fit(*dataset);
  if (!scaler.ok()) return 1;
  scaler->Transform(&*dataset);

  // Stage 2: SVMWithSGD, 10 iterations (the paper's configuration).
  Stopwatch train_watch;
  ml::SgdOptions sgd;
  sgd.iterations = 10;
  auto trained = ml::SvmWithSgd::Train(*dataset, sgd);
  if (!trained.ok()) return 1;
  const double train_seconds = train_watch.ElapsedSeconds();

  std::printf("%-28s %10.3fs\n", "DFS read into RDD", read_seconds);
  std::printf("%-28s %10.3fs\n", "SVMWithSGD (10 iters)", train_seconds);
  std::printf("%-28s %10.3fs\n", "total (paper: 774s at 5.6GB)",
              read_seconds + train_seconds);
  std::printf("read fraction of total: %.1f%% (paper: ~6%%)\n\n",
              100.0 * read_seconds / (read_seconds + train_seconds));

  // For contrast: the fully streamed pipeline including training.
  Stopwatch stream_watch;
  PipelineOptions options;
  options.approach = ConnectApproach::kInSqlStream;
  options.use_cache = false;
  auto prepared = env->pipeline->Prepare(request, options);
  if (!prepared.ok()) return 1;
  auto stream_dataset = AnalyticsPipeline::ToDataset(*prepared, "abandoned");
  if (!stream_dataset.ok()) return 1;
  scaler->Transform(&*stream_dataset);
  auto stream_trained = ml::SvmWithSgd::Train(*stream_dataset, sgd);
  if (!stream_trained.ok()) return 1;
  std::printf("full pipeline with streaming + training: %.3fs\n",
              stream_watch.ElapsedSeconds());
  return 0;
}
