# Empty compiler generated dependencies file for cart_abandonment.
# This may be replaced when dependencies are built.
