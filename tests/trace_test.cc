// Tests for the span tracer: parent/child ids, thread-local nesting,
// explicit cross-thread parents, the ambient-context fallback, sampling
// (including suppression of children of unsampled roots), JSON output, and
// trace-context propagation through the wire frame header.

#include "common/trace.h"

#include <algorithm>
#include <thread>

#include <gtest/gtest.h>

#include "stream/socket.h"
#include "stream/wire.h"

namespace sqlink {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Reset();
    Tracer::Global().set_sample_probability(1.0);
    Tracer::Global().set_enabled(true);
  }

  void TearDown() override {
    Tracer::Global().set_enabled(false);
    Tracer::Global().set_sample_probability(1.0);
    Tracer::Global().Reset();
  }

  static const SpanRecord* Find(const std::vector<SpanRecord>& spans,
                                const std::string& name) {
    auto it = std::find_if(
        spans.begin(), spans.end(),
        [&name](const SpanRecord& span) { return span.name == name; });
    return it == spans.end() ? nullptr : &*it;
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().set_enabled(false);
  {
    TraceSpan span("noop");
    EXPECT_FALSE(span.recording());
    EXPECT_FALSE(span.context().valid());
    EXPECT_FALSE(Tracer::CurrentContext().valid());
  }
  EXPECT_EQ(Tracer::Global().span_count(), 0u);
}

TEST_F(TraceTest, RootSpanGetsFreshIdsAndRecordsOnEnd) {
  {
    TraceSpan span("root");
    EXPECT_TRUE(span.recording());
    EXPECT_TRUE(span.context().valid());
    EXPECT_NE(span.context().span_id, 0u);
    // While open, the span is the thread's current context.
    EXPECT_EQ(Tracer::CurrentContext().trace_id, span.context().trace_id);
    EXPECT_EQ(Tracer::CurrentContext().span_id, span.context().span_id);
    EXPECT_EQ(Tracer::Global().span_count(), 0u);  // Not recorded yet.
  }
  EXPECT_FALSE(Tracer::CurrentContext().valid());
  const auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent_span_id, 0u);  // Root.
  EXPECT_FALSE(spans[0].error);
}

TEST_F(TraceTest, NestedSpansShareTraceAndLinkParents) {
  uint64_t outer_span_id = 0;
  uint64_t trace_id = 0;
  {
    TraceSpan outer("outer");
    outer_span_id = outer.context().span_id;
    trace_id = outer.context().trace_id;
    {
      TraceSpan inner("inner");
      EXPECT_EQ(inner.context().trace_id, trace_id);
      EXPECT_NE(inner.context().span_id, outer_span_id);
      // The stack pops back to the outer span when the inner one ends.
    }
    EXPECT_EQ(Tracer::CurrentContext().span_id, outer_span_id);
  }
  const auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* outer = Find(spans, "outer");
  const SpanRecord* inner = Find(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->trace_id, outer->trace_id);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_EQ(outer->parent_span_id, 0u);
}

TEST_F(TraceTest, ExplicitParentCrossesThreads) {
  TraceContext root_ctx;
  {
    TraceSpan root("root");
    root_ctx = root.context();
    std::thread worker([root_ctx] {
      // A pool thread has no open span; the explicit parent continues the
      // root's trace.
      TraceSpan child("worker", root_ctx);
      EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
    });
    worker.join();
  }
  const auto spans = Tracer::Global().Snapshot();
  const SpanRecord* child = Find(spans, "worker");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, root_ctx.trace_id);
  EXPECT_EQ(child->parent_span_id, root_ctx.span_id);
}

TEST_F(TraceTest, AmbientContextParentsSpanlessThreads) {
  TraceSpan root("ambient_root");
  ScopedAmbientTrace ambient(root.context());
  const TraceContext root_ctx = root.context();
  std::thread worker([] { TraceSpan span("ambient_child"); });
  worker.join();
  root.End();
  const auto spans = Tracer::Global().Snapshot();
  const SpanRecord* child = Find(spans, "ambient_child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, root_ctx.trace_id);
  EXPECT_EQ(child->parent_span_id, root_ctx.span_id);
}

TEST_F(TraceTest, ThreadCurrentSpanWinsOverAmbient) {
  TraceSpan root("root");
  ScopedAmbientTrace ambient(root.context());
  TraceSpan local("local");
  TraceSpan child("child");
  child.End();
  local.End();
  root.End();
  const auto spans = Tracer::Global().Snapshot();
  const SpanRecord* local_record = Find(spans, "local");
  const SpanRecord* child_record = Find(spans, "child");
  ASSERT_NE(local_record, nullptr);
  ASSERT_NE(child_record, nullptr);
  EXPECT_EQ(child_record->parent_span_id, local_record->span_id);
}

TEST_F(TraceTest, ZeroSamplingSuppressesRootAndDescendants) {
  Tracer::Global().set_sample_probability(0.0);
  {
    TraceSpan root("unsampled_root");
    EXPECT_FALSE(root.recording());
    // Children must not re-roll the die into a fresh trace.
    TraceSpan child("unsampled_child");
    EXPECT_FALSE(child.recording());
    EXPECT_FALSE(child.context().valid());
    child.End();
  }
  EXPECT_EQ(Tracer::Global().span_count(), 0u);

  // A later, fully sampled trace is unaffected.
  Tracer::Global().set_sample_probability(1.0);
  TraceSpan ok("sampled");
  EXPECT_TRUE(ok.recording());
}

TEST_F(TraceTest, AttributesAndErrorLandInRecord) {
  {
    TraceSpan span("attributed");
    span.AddAttribute("rows", 42);
    span.AddAttribute("bytes", 1024);
    span.SetError();
  }
  const auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].error);
  ASSERT_EQ(spans[0].attributes.size(), 2u);
  EXPECT_EQ(spans[0].attributes[0].first, "rows");
  EXPECT_EQ(spans[0].attributes[0].second, 42);
}

TEST_F(TraceTest, EndIsIdempotent) {
  TraceSpan span("once");
  span.End();
  span.End();
  EXPECT_EQ(Tracer::Global().span_count(), 1u);
}

TEST_F(TraceTest, JsonListsSpansWithStringIds) {
  {
    TraceSpan span("json_span");
    span.AddAttribute("split", 3);
  }
  const std::string json = Tracer::Global().ToJson();
  EXPECT_NE(json.find("\"name\":\"json_span\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"split\":3"), std::string::npos) << json;
}

// --- Wire propagation -------------------------------------------------------

TEST_F(TraceTest, FrameHeaderCarriesCurrentSpanAcrossTheWire) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  TraceContext sender_ctx;
  std::thread sender([&sender_ctx, port] {
    auto socket = TcpConnect("localhost", port);
    ASSERT_TRUE(socket.ok());
    TraceSpan span("wire_sender");
    sender_ctx = span.context();
    // The 3-arg SendFrame stamps the calling thread's current span.
    ASSERT_TRUE(SendFrame(&*socket, FrameType::kAck, "ping").ok());
    // The 4-arg overload relays an explicit context.
    TraceContext relayed{sender_ctx.trace_id, 9999};
    ASSERT_TRUE(
        SendFrame(&*socket, FrameType::kAck, "relay", relayed).ok());
  });

  auto accepted = listener->Accept();
  ASSERT_TRUE(accepted.ok());
  auto frame = RecvFrame(&*accepted);
  ASSERT_TRUE(frame.ok());
  sender.join();

  EXPECT_EQ(frame->payload, "ping");
  EXPECT_TRUE(frame->trace.valid());
  EXPECT_EQ(frame->trace.trace_id, sender_ctx.trace_id);
  EXPECT_EQ(frame->trace.span_id, sender_ctx.span_id);

  auto relay_frame = RecvFrame(&*accepted);
  ASSERT_TRUE(relay_frame.ok());
  EXPECT_EQ(relay_frame->trace.trace_id, sender_ctx.trace_id);
  EXPECT_EQ(relay_frame->trace.span_id, 9999u);

  // A receiver-side handler span parented to the frame context joins the
  // sender's trace — the cross-process link the coordinator relies on.
  {
    TraceSpan handler("wire_receiver", frame->trace);
    EXPECT_EQ(handler.context().trace_id, sender_ctx.trace_id);
  }
  const auto spans = Tracer::Global().Snapshot();
  const SpanRecord* receiver = Find(spans, "wire_receiver");
  ASSERT_NE(receiver, nullptr);
  EXPECT_EQ(receiver->parent_span_id, sender_ctx.span_id);
}

TEST_F(TraceTest, DisabledTracerSendsZeroTraceFields) {
  Tracer::Global().set_enabled(false);
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();
  std::thread sender([port] {
    auto socket = TcpConnect("localhost", port);
    ASSERT_TRUE(socket.ok());
    TraceSpan span("dark");
    ASSERT_TRUE(SendFrame(&*socket, FrameType::kAck, "x").ok());
  });
  auto accepted = listener->Accept();
  ASSERT_TRUE(accepted.ok());
  auto frame = RecvFrame(&*accepted);
  sender.join();
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->trace.valid());
  EXPECT_EQ(frame->trace.span_id, 0u);
}

}  // namespace
}  // namespace sqlink
