#ifndef SQLINK_SQL_LEXER_H_
#define SQLINK_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace sqlink {

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; string literals use single quotes with ''
/// escaping. The trailing token is always kEnd.
Result<std::vector<Token>> Tokenize(std::string_view sql);

/// True if `word` is a reserved SQL keyword of this dialect.
bool IsSqlKeyword(std::string_view word);

}  // namespace sqlink

#endif  // SQLINK_SQL_LEXER_H_
