#ifndef SQLINK_STREAM_SPILL_QUEUE_H_
#define SQLINK_STREAM_SPILL_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>

#include "common/byte_budget.h"
#include "common/metrics.h"
#include "common/result.h"

namespace sqlink {

/// Append-only disk file of length-prefixed records — the shared spill
/// mechanism of the send queue and the replay window. The file is created
/// lazily on the first Append and is ALWAYS removed once the SpillFile is
/// destroyed (or explicitly Remove()d), including when an abort struck
/// between creating the file and completing the first record — the leak the
/// old inline implementation had. Not thread-safe; callers hold their own
/// locks.
class SpillFile {
 public:
  explicit SpillFile(std::string path) : path_(std::move(path)) {}
  ~SpillFile() { Remove(); }

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends one fixed32-length-prefixed record, returning its offset for
  /// ReadAt. The file is flushed so a concurrent ReadAt sees the record.
  Result<uint64_t> Append(std::string_view record);

  /// Reads back the record at `offset` (a value returned by Append).
  Result<std::string> ReadAt(uint64_t offset);

  /// The offset one past `offset`'s record — the next sequential record.
  static uint64_t NextOffset(uint64_t offset, const std::string& record) {
    return offset + 4 + record.size();
  }

  /// Closes and deletes the backing file if it was ever created. Idempotent.
  void Remove();

  const std::string& path() const { return path_; }
  bool created() const { return created_; }

 private:
  std::string path_;
  bool created_ = false;
  uint64_t write_offset_ = 0;
  std::ofstream out_;
  std::ifstream in_;
};

/// The per-target send buffer of a SQL worker (§3): a FIFO of encoded
/// frames bounded by a byte budget (the paper's send-buffer size, 4 KB in
/// its experiments). When the ML consumer is slow and the buffer fills, the
/// producer either blocks (spill disabled — pure backpressure) or spills
/// overflow frames to a node-local disk file so the producer and consumer
/// stay decoupled ("we can spill it onto the local disks to synchronize the
/// producer and consumers").
///
/// FIFO order is preserved across the memory/disk boundary: once spilling
/// starts, new frames go to disk behind the spilled ones until the disk
/// backlog is fully drained.
class SpillingByteQueue {
 public:
  struct Options {
    size_t memory_capacity_bytes = 4096;
    bool spill_enabled = true;
    std::string spill_path;  ///< Required when spill_enabled.
    /// Optional per-query spill quota shared by every queue of the query.
    /// When exhausted, Push degrades to backpressure (parking the producer)
    /// instead of growing the spill directory — the serving layer's
    /// end-to-end overload defense. Null means no quota.
    ByteBudgetPtr spill_budget;
  };

  explicit SpillingByteQueue(Options options);
  ~SpillingByteQueue();

  SpillingByteQueue(const SpillingByteQueue&) = delete;
  SpillingByteQueue& operator=(const SpillingByteQueue&) = delete;

  /// Enqueues one frame. Blocks while full with spill disabled; spills
  /// otherwise. Fails after Cancel().
  Status Push(std::string frame);

  /// Marks the producer done; pending Pops drain then end.
  void CloseProducer();

  /// Dequeues the next frame; nullopt when the producer closed and
  /// everything (memory + spill) is drained. Blocks otherwise.
  Result<std::optional<std::string>> Pop();

  /// Unblocks all waiters with kCancelled and deletes the spill file (an
  /// aborted transfer must leave no .spill files behind).
  void Cancel();

  int64_t spilled_frames() const;
  int64_t spilled_bytes() const;

 private:
  /// Charges `bytes` to the per-query budget (if any); returns false and
  /// counts a budget park when the quota is exhausted. Caller holds mu_.
  bool ChargeBudgetLocked(int64_t bytes);
  /// Returns up to `bytes` of this queue's outstanding charge to the budget.
  void ReleaseBudgetLocked(int64_t bytes);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable producer_cv_;
  std::condition_variable consumer_cv_;

  std::deque<std::string> memory_;
  size_t memory_bytes_ = 0;
  bool spilling_ = false;
  int64_t spill_written_ = 0;  // Frames appended to the spill file.
  int64_t spill_read_ = 0;     // Frames consumed from the spill file.
  int64_t spilled_bytes_ = 0;
  SpillFile spill_;
  uint64_t spill_read_offset_ = 0;
  bool producer_closed_ = false;
  bool cancelled_ = false;
  int64_t budget_outstanding_ = 0;  ///< Spill bytes charged, not yet drained.

  // Shared instrument handles (resolved once in the constructor; all
  // SpillingByteQueues aggregate into the same global instruments).
  Gauge* depth_frames_;   ///< Live frames held (memory + undrained spill).
  Gauge* depth_bytes_;    ///< Live bytes held in memory.
  Counter* spill_frames_total_;
  Counter* spill_bytes_total_;
  Counter* drain_frames_total_;
  Counter* budget_parks_total_;
  Histogram* spill_write_micros_;
  Histogram* spill_read_micros_;
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_SPILL_QUEUE_H_
