#!/usr/bin/env bash
# Two-stage CI entry point: fast unit suite first, fault-injection chaos
# suite second, so a broken build fails in seconds instead of after the
# slow chaos runs. Optional third stage rebuilds with a sanitizer.
#
# Usage:
#   ci/run_tests.sh                 # configure + build + unit + chaos
#   SQLINK_SANITIZE=thread ci/run_tests.sh   # also run a TSan pass
#
# Environment:
#   BUILD_DIR        build directory (default: build)
#   SQLINK_SANITIZE  thread|address|undefined — adds a sanitizer stage in
#                    a separate build dir (${BUILD_DIR}-${SQLINK_SANITIZE})
#   CTEST_PARALLEL   parallel test jobs (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${CTEST_PARALLEL:-$(nproc)}"

run_suites() {
  local dir="$1"
  echo "==> [${dir}] stage 1: unit suite"
  (cd "${dir}" && ctest -L unit --output-on-failure -j "${JOBS}")
  echo "==> [${dir}] stage 2: chaos suite"
  (cd "${dir}" && ctest -L chaos --output-on-failure -j "${JOBS}")
}

echo "==> configure + build (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
run_suites "${BUILD_DIR}"

if [[ -n "${SQLINK_SANITIZE:-}" ]]; then
  SAN_DIR="${BUILD_DIR}-${SQLINK_SANITIZE}"
  echo "==> stage 3: sanitizer pass (-fsanitize=${SQLINK_SANITIZE})"
  cmake -B "${SAN_DIR}" -S . -DSQLINK_SANITIZE="${SQLINK_SANITIZE}"
  cmake --build "${SAN_DIR}" -j "${JOBS}"
  run_suites "${SAN_DIR}"
fi

echo "==> all stages passed"
