file(REMOVE_RECURSE
  "CMakeFiles/sqlink_rewriter.dir/canonical_query.cc.o"
  "CMakeFiles/sqlink_rewriter.dir/canonical_query.cc.o.d"
  "CMakeFiles/sqlink_rewriter.dir/predicate_logic.cc.o"
  "CMakeFiles/sqlink_rewriter.dir/predicate_logic.cc.o.d"
  "CMakeFiles/sqlink_rewriter.dir/query_rewriter.cc.o"
  "CMakeFiles/sqlink_rewriter.dir/query_rewriter.cc.o.d"
  "libsqlink_rewriter.a"
  "libsqlink_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
