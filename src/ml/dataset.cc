#include "ml/dataset.h"

#include "common/status_macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace sqlink::ml {

namespace {

double NumericOrZero(const Value& value) {
  if (value.is_null()) return 0.0;
  auto d = value.AsDouble();
  return d.ok() ? *d : 0.0;
}

}  // namespace

Result<Dataset> Dataset::FromRows(
    const RowDataset& rows, const std::string& label_column,
    const std::vector<std::string>& feature_columns) {
  ASSIGN_OR_RETURN(int label_index, rows.schema->RequireField(label_column));
  std::vector<int> feature_indices;
  feature_indices.reserve(feature_columns.size());
  for (const std::string& name : feature_columns) {
    ASSIGN_OR_RETURN(int index, rows.schema->RequireField(name));
    const DataType type = rows.schema->field(index).type;
    if (type == DataType::kString) {
      return Status::InvalidArgument(
          "feature column '" + name +
          "' is categorical (STRING); recode it first (see In-SQL "
          "transformations)");
    }
    feature_indices.push_back(index);
  }

  std::vector<std::vector<LabeledPoint>> partitions(rows.partitions.size());
  ParallelFor(rows.partitions.size(), [&](size_t p) {
    partitions[p].reserve(rows.partitions[p].size());
    for (const Row& row : rows.partitions[p]) {
      LabeledPoint point;
      point.label = NumericOrZero(row[static_cast<size_t>(label_index)]);
      point.features.reserve(feature_indices.size());
      for (int f : feature_indices) {
        point.features.push_back(NumericOrZero(row[static_cast<size_t>(f)]));
      }
      partitions[p].push_back(std::move(point));
    }
  });
  return Dataset(std::move(partitions), feature_columns.size());
}

Result<Dataset> Dataset::FromRowsAutoFeatures(const RowDataset& rows,
                                              const std::string& label_column) {
  std::vector<std::string> features;
  for (const Field& field : rows.schema->fields()) {
    if (!EqualsIgnoreCase(field.name, label_column)) {
      features.push_back(field.name);
    }
  }
  return FromRows(rows, label_column, features);
}

}  // namespace sqlink::ml
