#include "stream/spill_queue.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace sqlink {

Result<uint64_t> SpillFile::Append(std::string_view record) {
  if (!out_.is_open()) {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_) {
      return Status::IoError("cannot open spill file " + path_);
    }
    created_ = true;
  }
  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(record.size()));
  framed += record;
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out_.flush();
  if (!out_) {
    return Status::IoError("spill write failed: " + path_);
  }
  const uint64_t offset = write_offset_;
  write_offset_ += framed.size();
  return offset;
}

Result<std::string> SpillFile::ReadAt(uint64_t offset) {
  if (!in_.is_open()) {
    in_.open(path_, std::ios::binary);
    if (!in_) {
      return Status::IoError("cannot open spill file for read: " + path_);
    }
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  char header[4];
  in_.read(header, 4);
  uint32_t length = 0;
  std::memcpy(&length, header, 4);
  std::string record(length, '\0');
  in_.read(record.data(), static_cast<std::streamsize>(length));
  if (!in_) {
    return Status::IoError("spill read failed: " + path_);
  }
  return record;
}

void SpillFile::Remove() {
  if (out_.is_open()) out_.close();
  if (in_.is_open()) in_.close();
  if (created_) {
    std::remove(path_.c_str());
    created_ = false;
  }
}

SpillingByteQueue::SpillingByteQueue(Options options)
    : options_(std::move(options)),
      spill_(options_.spill_path.empty() ? std::string()
                                         : options_.spill_path + ".spill"),
      depth_frames_(
          MetricsRegistry::Global().GetGauge("stream.spill.queue_depth_frames")),
      depth_bytes_(
          MetricsRegistry::Global().GetGauge("stream.spill.queue_depth_bytes")),
      spill_frames_total_(
          MetricsRegistry::Global().GetCounter("stream.spill.spilled_frames")),
      spill_bytes_total_(
          MetricsRegistry::Global().GetCounter("stream.spill.spilled_bytes")),
      drain_frames_total_(
          MetricsRegistry::Global().GetCounter("stream.spill.drained_frames")),
      budget_parks_total_(
          MetricsRegistry::Global().GetCounter("stream.spill.budget_parks")),
      spill_write_micros_(
          MetricsRegistry::Global().GetHistogram("stream.spill.write_micros")),
      spill_read_micros_(
          MetricsRegistry::Global().GetHistogram("stream.spill.read_micros")) {
  SQLINK_CHECK(!options_.spill_enabled || !options_.spill_path.empty())
      << "spill enabled without a spill path";
}

SpillingByteQueue::~SpillingByteQueue() {
  // Undo this queue's contribution to the shared depth gauges for anything
  // still enqueued (cancelled or abandoned mid-stream). The SpillFile
  // member deletes its backing file unconditionally.
  const int64_t live_frames = static_cast<int64_t>(memory_.size()) +
                              (spill_written_ - spill_read_);
  if (live_frames > 0) depth_frames_->Add(-live_frames);
  if (memory_bytes_ > 0) depth_bytes_->Add(-static_cast<int64_t>(memory_bytes_));
  if (options_.spill_budget && budget_outstanding_ > 0) {
    options_.spill_budget->Release(budget_outstanding_);
  }
}

Status SpillingByteQueue::Push(std::string frame) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cancelled_) return Status::Cancelled("queue cancelled");
    if (producer_closed_) {
      return Status::FailedPrecondition("push after CloseProducer");
    }
    if (!spilling_ &&
        (memory_bytes_ + frame.size() <= options_.memory_capacity_bytes ||
         memory_.empty())) {
      // An oversized frame is admitted alone so progress is possible.
      memory_bytes_ += frame.size();
      depth_frames_->Increment();
      depth_bytes_->Add(static_cast<int64_t>(frame.size()));
      memory_.push_back(std::move(frame));
      consumer_cv_.notify_one();
      return Status::OK();
    }
    if (options_.spill_enabled &&
        SQLINK_FAILPOINT("stream.spill.write") == FailpointOutcome::kNone &&
        ChargeBudgetLocked(static_cast<int64_t>(frame.size()))) {
      // An injected spill failure is evaluated before any bytes reach disk,
      // so the queue can degrade to backpressure instead of corrupting the
      // spill file; genuine write failures below still fail hard. The
      // per-query spill budget is likewise checked up front: when exhausted
      // this Push degrades to backpressure instead of growing the spill
      // directory, and the producer retries as the consumer drains.
      spilling_ = true;
      TraceSpan span("spill.write");
      Stopwatch timer;
      auto appended = spill_.Append(frame);
      if (!appended.ok()) {
        span.SetError();
        ReleaseBudgetLocked(static_cast<int64_t>(frame.size()));
        return appended.status();
      }
      ++spill_written_;
      spilled_bytes_ += static_cast<int64_t>(frame.size());
      spill_write_micros_->Record(timer.ElapsedMicros());
      spill_frames_total_->Increment();
      spill_bytes_total_->Add(static_cast<int64_t>(frame.size()));
      depth_frames_->Increment();
      span.AddAttribute("bytes", static_cast<int64_t>(frame.size()));
      consumer_cv_.notify_one();
      return Status::OK();
    }
    // Backpressure: wait for the consumer. When a spill budget is in play
    // the wake-up may come from a sibling queue of the same query draining
    // (it releases shared budget but signals its own condvar), so poll.
    if (options_.spill_budget && !options_.spill_budget->unlimited()) {
      producer_cv_.wait_for(lock, std::chrono::milliseconds(1));
    } else {
      producer_cv_.wait(lock);
    }
  }
}

bool SpillingByteQueue::ChargeBudgetLocked(int64_t bytes) {
  if (!options_.spill_budget) return true;
  if (!options_.spill_budget->TryCharge(bytes)) {
    budget_parks_total_->Increment();
    return false;
  }
  budget_outstanding_ += bytes;
  return true;
}

void SpillingByteQueue::ReleaseBudgetLocked(int64_t bytes) {
  if (!options_.spill_budget) return;
  const int64_t release = bytes < budget_outstanding_ ? bytes : budget_outstanding_;
  if (release > 0) {
    options_.spill_budget->Release(release);
    budget_outstanding_ -= release;
  }
}

void SpillingByteQueue::CloseProducer() {
  std::lock_guard<std::mutex> lock(mu_);
  producer_closed_ = true;
  consumer_cv_.notify_all();
}

Result<std::optional<std::string>> SpillingByteQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cancelled_) return Status::Cancelled("queue cancelled");
    if (!memory_.empty()) {
      std::string frame = std::move(memory_.front());
      memory_.pop_front();
      memory_bytes_ -= frame.size();
      depth_frames_->Decrement();
      depth_bytes_->Add(-static_cast<int64_t>(frame.size()));
      producer_cv_.notify_one();
      return std::optional<std::string>(std::move(frame));
    }
    if (spill_read_ < spill_written_) {
      if (SQLINK_FAILPOINT("stream.spill.read") != FailpointOutcome::kNone) {
        return Status::IoError("failpoint: injected spill read error");
      }
      TraceSpan span("spill.drain");
      Stopwatch timer;
      auto frame = spill_.ReadAt(spill_read_offset_);
      if (!frame.ok()) {
        span.SetError();
        return frame.status();
      }
      spill_read_offset_ = SpillFile::NextOffset(spill_read_offset_, *frame);
      ++spill_read_;
      spill_read_micros_->Record(timer.ElapsedMicros());
      drain_frames_total_->Increment();
      depth_frames_->Decrement();
      ReleaseBudgetLocked(static_cast<int64_t>(frame->size()));
      span.AddAttribute("bytes", static_cast<int64_t>(frame->size()));
      if (spill_read_ == spill_written_) {
        // Disk backlog drained; producer may use memory again.
        spilling_ = false;
        producer_cv_.notify_one();
      }
      return std::optional<std::string>(std::move(*frame));
    }
    if (producer_closed_) return std::optional<std::string>();
    consumer_cv_.wait(lock);
  }
}

void SpillingByteQueue::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  // Drop the disk backlog immediately: an aborted query must not leave
  // .spill files for the operator to clean up, and its budget charge must
  // return to the pool so neighbor queries can use it.
  spill_.Remove();
  ReleaseBudgetLocked(budget_outstanding_);
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

int64_t SpillingByteQueue::spilled_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_written_;
}

int64_t SpillingByteQueue::spilled_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spilled_bytes_;
}

}  // namespace sqlink
