#ifndef SQLINK_BENCH_BENCH_UTIL_H_
#define SQLINK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "dfs/dfs.h"
#include "pipeline/analytics_pipeline.h"
#include "pipeline/datagen.h"
#include "sql/engine.h"

namespace sqlink::bench {

/// Shared fixture for the figure/ablation benchmarks: a 4-node simulated
/// cluster (matching the paper's 4 worker servers), a DFS, the SQL engine
/// and the carts/users workload.
struct BenchEnv {
  std::unique_ptr<ScopedTempDir> workspace;
  ClusterPtr cluster;
  SqlEnginePtr engine;
  DfsPtr dfs;
  std::unique_ptr<AnalyticsPipeline> pipeline;

  static std::unique_ptr<BenchEnv> Make(int64_t num_carts,
                                        int num_nodes = 4) {
    SetLogLevel(LogLevel::kError);
    auto env = std::make_unique<BenchEnv>();
    env->workspace = std::make_unique<ScopedTempDir>("sqlink_bench");
    auto cluster = Cluster::Make(num_nodes, env->workspace->path());
    if (!cluster.ok()) {
      std::fprintf(stderr, "cluster: %s\n",
                   cluster.status().ToString().c_str());
      std::exit(1);
    }
    env->cluster = *cluster;
    env->engine = SqlEngine::Make(env->cluster);
    env->dfs = std::make_shared<Dfs>(env->cluster, DfsOptions{});
    env->pipeline = std::make_unique<AnalyticsPipeline>(env->engine, env->dfs);

    CartsWorkloadOptions data;
    data.num_carts = num_carts;
    data.num_users = std::max<int64_t>(10, num_carts / 100);
    auto generated = GenerateCartsWorkload(env->engine.get(), data);
    if (!generated.ok()) {
      std::fprintf(stderr, "datagen: %s\n",
                   generated.status().ToString().c_str());
      std::exit(1);
    }
    return env;
  }

  /// The paper's transformation request over that workload.
  static TransformRequest PaperRequest() {
    TransformRequest request;
    request.prep_sql = CartsPrepQuery();
    request.recode_columns = {"gender", "abandoned"};
    request.codings["gender"] = CodingScheme::kDummy;
    return request;
  }
};

/// Row-count CLI argument with a default.
inline int64_t RowsArg(int argc, char** argv, int64_t default_rows) {
  return argc > 1 ? std::atoll(argv[1]) : default_rows;
}

}  // namespace sqlink::bench

#endif  // SQLINK_BENCH_BENCH_UTIL_H_
