#include "ml/scaler.h"

#include <cmath>

#include "common/thread_pool.h"

namespace sqlink::ml {

Result<StandardScaler> StandardScaler::Fit(const Dataset& data) {
  if (data.TotalPoints() == 0) {
    return Status::InvalidArgument("cannot fit scaler on empty dataset");
  }
  const size_t dim = data.dimension();
  const size_t num_parts = data.num_partitions();

  struct Stats {
    DenseVector sum;
    DenseVector sum_squares;
    size_t count = 0;
  };
  std::vector<Stats> worker_stats(num_parts);
  ParallelFor(num_parts, [&](size_t p) {
    Stats& stats = worker_stats[p];
    stats.sum.assign(dim, 0.0);
    stats.sum_squares.assign(dim, 0.0);
    for (const LabeledPoint& point : data.partitions()[p]) {
      ++stats.count;
      for (size_t f = 0; f < dim; ++f) {
        stats.sum[f] += point.features[f];
        stats.sum_squares[f] += point.features[f] * point.features[f];
      }
    }
  });

  DenseVector sum(dim, 0.0);
  DenseVector sum_squares(dim, 0.0);
  size_t count = 0;
  for (const Stats& stats : worker_stats) {
    count += stats.count;
    for (size_t f = 0; f < dim; ++f) {
      sum[f] += stats.sum[f];
      sum_squares[f] += stats.sum_squares[f];
    }
  }

  StandardScaler scaler;
  scaler.means_.resize(dim);
  scaler.stddevs_.resize(dim);
  for (size_t f = 0; f < dim; ++f) {
    scaler.means_[f] = sum[f] / static_cast<double>(count);
    const double variance = std::max(
        0.0, sum_squares[f] / static_cast<double>(count) -
                 scaler.means_[f] * scaler.means_[f]);
    scaler.stddevs_[f] = std::sqrt(variance);
  }
  return scaler;
}

void StandardScaler::Transform(Dataset* data) const {
  ParallelFor(data->num_partitions(), [&](size_t p) {
    for (LabeledPoint& point : data->mutable_partitions()[p]) {
      for (size_t f = 0; f < point.features.size() && f < means_.size(); ++f) {
        point.features[f] =
            stddevs_[f] > 0
                ? (point.features[f] - means_[f]) / stddevs_[f]
                : 0.0;
      }
    }
  });
}

DenseVector StandardScaler::Apply(const DenseVector& features) const {
  DenseVector out(features.size());
  for (size_t f = 0; f < features.size() && f < means_.size(); ++f) {
    out[f] = stddevs_[f] > 0 ? (features[f] - means_[f]) / stddevs_[f] : 0.0;
  }
  return out;
}

}  // namespace sqlink::ml
