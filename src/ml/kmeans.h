#ifndef SQLINK_ML_KMEANS_H_
#define SQLINK_ML_KMEANS_H_

#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace sqlink::ml {

struct KMeansOptions {
  int k = 2;
  int max_iterations = 20;
  double tolerance = 1e-6;  ///< Stop when total center movement is below.
  uint64_t seed = 42;
};

struct KMeansModel {
  std::vector<DenseVector> centers;
  double cost = 0;  ///< Sum of squared distances to the nearest center.

  /// Index of the nearest center.
  int Predict(const DenseVector& point) const;
};

/// Distributed Lloyd's algorithm: each iteration, workers assign their
/// partition's points to centers and emit per-center sums; the driver merges
/// and recomputes centers. Labels of the dataset are ignored.
class KMeans {
 public:
  static Result<KMeansModel> Train(const Dataset& data,
                                   const KMeansOptions& options = {});
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_KMEANS_H_
