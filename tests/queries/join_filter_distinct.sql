SELECT DISTINCT e.s, d.label FROM e1025 e JOIN dims d ON e.k = d.k WHERE e.flag = TRUE AND e.v < 20
