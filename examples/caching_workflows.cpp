// Caching workflows (§5): how the query rewriter reuses transformation
// artifacts across successive analyst queries.
//
// Replays the paper's own query sequence:
//   Q1  the Section 1 prep query            -> computed from scratch
//   Q2  subset projection + gender filter   -> full-result cache (§5.1)
//   Q3  extra column + year predicate       -> recode-map cache (§5.2)
//   Q4  different join                      -> miss, recomputed
//
//   ./caching_workflows [num_carts]

#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "pipeline/analytics_pipeline.h"
#include "pipeline/datagen.h"

namespace {

using namespace sqlink;

const char* SourceName(QueryRewriter::Source source) {
  switch (source) {
    case QueryRewriter::Source::kComputed:
      return "computed from scratch";
    case QueryRewriter::Source::kRecodeMapCache:
      return "recode-map cache hit (§5.2)";
    case QueryRewriter::Source::kFullResultCache:
      return "full-result cache hit (§5.1)";
  }
  return "?";
}

int Run(int64_t num_carts) {
  ScopedTempDir workspace("caching");
  auto cluster = Cluster::Make(4, workspace.path());
  if (!cluster.ok()) return 1;
  SqlEnginePtr engine = SqlEngine::Make(*cluster);
  auto dfs = std::make_shared<Dfs>(*cluster, DfsOptions{});
  AnalyticsPipeline pipeline(engine, dfs);

  CartsWorkloadOptions data;
  data.num_users = num_carts / 10;
  data.num_carts = num_carts;
  if (!GenerateCartsWorkload(engine.get(), data).ok()) return 1;

  auto run = [&](const char* name, const TransformRequest& request,
                 bool cache_full) -> bool {
    PipelineOptions options;
    options.approach = ConnectApproach::kInSqlStream;
    options.cache_full_result = cache_full;
    auto result = pipeline.Prepare(request, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   result.status().ToString().c_str());
      return false;
    }
    std::printf("%-4s %7zu rows in %6.3fs  <- %s\n", name,
                result->dataset.TotalRows(), result->timings.total_seconds,
                SourceName(result->source));
    return true;
  };

  // Q1: the paper's prep query; materialize the transformed result so the
  // §5.1 cache has something to serve.
  TransformRequest q1;
  q1.prep_sql = CartsPrepQuery();
  q1.recode_columns = {"gender", "abandoned"};
  q1.codings["gender"] = CodingScheme::kDummy;
  if (!run("Q1", q1, /*cache_full=*/true)) return 1;

  // Q2: the paper's §5.1 follow-up — subset of the projection, extra
  // predicate on a projected (and dummy-coded!) field.
  TransformRequest q2;
  q2.prep_sql =
      "SELECT U.age, C.amount, C.abandoned FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'F'";
  q2.recode_columns = {"abandoned"};
  if (!run("Q2", q2, false)) return 1;

  // Q3: the paper's §5.2 follow-up — projects nItems (not in the cache) so
  // the full result can't be used, but the recode map can.
  TransformRequest q3;
  q3.prep_sql =
      "SELECT U.age, U.gender, C.amount, C.nItems, C.abandoned "
      "FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014";
  q3.recode_columns = {"gender", "abandoned"};
  q3.codings["gender"] = CodingScheme::kDummy;
  if (!run("Q3", q3, false)) return 1;

  // Q4: no join with users — nothing matches, full recomputation.
  TransformRequest q4;
  q4.prep_sql = "SELECT C.amount, C.abandoned FROM carts C WHERE C.year = 2014";
  q4.recode_columns = {"abandoned"};
  if (!run("Q4", q4, false)) return 1;

  std::printf("\ncache stats: %lld full hits, %lld map hits, %lld misses\n",
              static_cast<long long>(pipeline.cache()->full_hits()),
              static_cast<long long>(pipeline.cache()->map_hits()),
              static_cast<long long>(pipeline.cache()->misses()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sqlink::SetLogLevel(sqlink::LogLevel::kWarning);
  const int64_t num_carts = argc > 1 ? std::atoll(argv[1]) : 50000;
  return Run(num_carts);
}
