#include "sql/expr.h"

#include <cmath>
#include <cstdlib>
#include <string_view>

#include "common/logging.h"
#include "common/status_macros.h"
#include "common/string_util.h"

namespace sqlink {

// ---------------------------------------------------------------------------
// NameScope

void NameScope::AddRelation(const std::string& qualifier,
                            const SchemaPtr& schema) {
  const int relation = static_cast<int>(relations_.size());
  relations_.push_back(Relation{qualifier, schema});
  for (const Field& field : schema->fields()) {
    columns_.push_back(ColumnEntry{relation, field.name, field.type});
  }
}

Result<NameScope::Resolution> NameScope::Resolve(
    const std::string& qualifier, const std::string& column) const {
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnEntry& entry = columns_[i];
    if (!EqualsIgnoreCase(entry.name, column)) continue;
    if (!qualifier.empty() &&
        !EqualsIgnoreCase(relations_[static_cast<size_t>(entry.relation)].qualifier,
                          qualifier)) {
      continue;
    }
    if (found >= 0) {
      return Status::InvalidArgument(
          "ambiguous column reference: " +
          (qualifier.empty() ? column : qualifier + "." + column));
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound(
        "unknown column: " +
        (qualifier.empty() ? column : qualifier + "." + column));
  }
  return Resolution{found, columns_[static_cast<size_t>(found)].type,
                    columns_[static_cast<size_t>(found)].name};
}

int NameScope::RelationOfColumn(int flat_index) const {
  return columns_[static_cast<size_t>(flat_index)].relation;
}

SchemaPtr NameScope::FlatSchema() const {
  std::vector<Field> fields;
  fields.reserve(columns_.size());
  for (const ColumnEntry& entry : columns_) {
    fields.push_back(Field{entry.name, entry.type});
  }
  return Schema::Make(std::move(fields));
}

// ---------------------------------------------------------------------------
// Bound expression nodes

Status BoundExpr::EvaluateBatch(const ColumnBatch& batch, Column* out) const {
  *out = Column();
  out->type = output_type();
  const size_t n = batch.num_rows();
  Row row;
  for (size_t r = 0; r < n; ++r) {
    batch.EmitRow(r, &row);
    ASSIGN_OR_RETURN(Value v, Evaluate(row));
    RETURN_IF_ERROR(AppendColumnValue(out, r, v, "expr"));
  }
  return Status::OK();
}

namespace {

bool IsNumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

/// Row `row` of a numeric column as a double (int64 widens).
inline double NumericAt(const Column& c, size_t row) {
  return c.type == DataType::kInt64 ? static_cast<double>(c.ints[row])
                                    : c.doubles[row];
}

/// Appends a non-null bool / a null to a kBool output column.
inline void AppendBool(Column* out, size_t row, bool v) {
  out->AppendNullBit(row, false);
  out->bools.push_back(v ? 1 : 0);
}
inline void AppendBoolNull(Column* out, size_t row) {
  out->AppendNullBit(row, true);
  out->bools.push_back(0);
}

class ColumnExpr final : public BoundExpr {
 public:
  ColumnExpr(int index, DataType type) : BoundExpr(type), index_(index) {}
  Result<Value> Evaluate(const Row& row) const override {
    return row[static_cast<size_t>(index_)];
  }
  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    *out = batch.column(static_cast<size_t>(index_));
    return Status::OK();
  }

 private:
  int index_;
};

class LiteralExpr final : public BoundExpr {
 public:
  explicit LiteralExpr(Value value)
      : BoundExpr(value.is_null() ? DataType::kString : value.type()),
        value_(std::move(value)) {}
  Result<Value> Evaluate(const Row&) const override { return value_; }
  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    *out = Column();
    out->type = output_type();
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      RETURN_IF_ERROR(AppendColumnValue(out, r, value_, "literal"));
    }
    return Status::OK();
  }

 private:
  Value value_;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

Result<CompareOp> CompareOpFromString(const std::string& op) {
  if (op == "=") return CompareOp::kEq;
  if (op == "<>" || op == "!=") return CompareOp::kNe;
  if (op == "<") return CompareOp::kLt;
  if (op == "<=") return CompareOp::kLe;
  if (op == ">") return CompareOp::kGt;
  if (op == ">=") return CompareOp::kGe;
  return Status::InvalidArgument("unknown comparison operator: " + op);
}

class ComparisonExpr final : public BoundExpr {
 public:
  ComparisonExpr(CompareOp op, BoundExprPtr lhs, BoundExprPtr rhs)
      : BoundExpr(DataType::kBool),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  Result<Value> Evaluate(const Row& row) const override {
    ASSIGN_OR_RETURN(Value left, lhs_->Evaluate(row));
    ASSIGN_OR_RETURN(Value right, rhs_->Evaluate(row));
    if (left.is_null() || right.is_null()) return Value::Null();
    // Integer pairs compare natively (going through double would lose
    // precision past 2^53 and diverge from the vectorized kernel); mixed
    // numeric comparison goes through doubles; otherwise types must match.
    int cmp = 0;
    const bool left_num = left.is_int64() || left.is_double();
    const bool right_num = right.is_int64() || right.is_double();
    if (left.is_int64() && right.is_int64()) {
      const int64_t l = left.int64_value();
      const int64_t r = right.int64_value();
      cmp = (l < r) ? -1 : (l > r ? 1 : 0);
    } else if (left_num && right_num) {
      const double l = *left.AsDouble();
      const double r = *right.AsDouble();
      cmp = (l < r) ? -1 : (l > r ? 1 : 0);
    } else if (left.type() == right.type()) {
      if (left == right) {
        cmp = 0;
      } else {
        cmp = left < right ? -1 : 1;
      }
    } else {
      return Status::InvalidArgument(
          "cannot compare " + std::string(DataTypeToString(left.type())) +
          " with " + std::string(DataTypeToString(right.type())));
    }
    return Value::Bool(ApplyOp(cmp));
  }

  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    Column l;
    Column r;
    RETURN_IF_ERROR(lhs_->EvaluateBatch(batch, &l));
    RETURN_IF_ERROR(rhs_->EvaluateBatch(batch, &r));
    const size_t n = batch.num_rows();
    *out = Column();
    out->type = DataType::kBool;
    out->bools.reserve(n);
    if (l.type == DataType::kInt64 && r.type == DataType::kInt64) {
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          AppendBoolNull(out, i);
          continue;
        }
        const int64_t a = l.ints[i];
        const int64_t b = r.ints[i];
        AppendBool(out, i, ApplyOp(a < b ? -1 : (a > b ? 1 : 0)));
      }
    } else if (IsNumericType(l.type) && IsNumericType(r.type)) {
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          AppendBoolNull(out, i);
          continue;
        }
        const double a = NumericAt(l, i);
        const double b = NumericAt(r, i);
        AppendBool(out, i, ApplyOp(a < b ? -1 : (a > b ? 1 : 0)));
      }
    } else if (l.type == DataType::kString && r.type == DataType::kString) {
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          AppendBoolNull(out, i);
          continue;
        }
        const std::string_view a = l.dict[l.codes[i]];
        const std::string_view b = r.dict[r.codes[i]];
        AppendBool(out, i, ApplyOp(a < b ? -1 : (b < a ? 1 : 0)));
      }
    } else if (l.type == DataType::kBool && r.type == DataType::kBool) {
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          AppendBoolNull(out, i);
          continue;
        }
        const int a = l.bools[i] != 0 ? 1 : 0;
        const int b = r.bools[i] != 0 ? 1 : 0;
        AppendBool(out, i, ApplyOp(a - b));
      }
    } else {
      // Incompatible column types. The row engine only raises the error on
      // rows where BOTH sides are non-NULL (NULL wins first), so an all-NULL
      // operand column never errors.
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          AppendBoolNull(out, i);
          continue;
        }
        return Status::InvalidArgument(
            "cannot compare " + std::string(DataTypeToString(l.type)) +
            " with " + std::string(DataTypeToString(r.type)));
      }
    }
    return Status::OK();
  }

 private:
  bool ApplyOp(int cmp) const {
    switch (op_) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
    return false;
  }

  CompareOp op_;
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
};

class AndExpr final : public BoundExpr {
 public:
  AndExpr(BoundExprPtr lhs, BoundExprPtr rhs)
      : BoundExpr(DataType::kBool), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<Value> Evaluate(const Row& row) const override {
    ASSIGN_OR_RETURN(Value left, lhs_->Evaluate(row));
    // Kleene AND: FALSE dominates NULL.
    if (left.is_bool() && !left.bool_value()) return Value::Bool(false);
    ASSIGN_OR_RETURN(Value right, rhs_->Evaluate(row));
    if (right.is_bool() && !right.bool_value()) return Value::Bool(false);
    if (left.is_null() || right.is_null()) return Value::Null();
    return Value::Bool(left.bool_value() && right.bool_value());
  }

  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    Column l;
    RETURN_IF_ERROR(lhs_->EvaluateBatch(batch, &l));
    Column r;
    // The row engine never evaluates the right side for rows where the left
    // is FALSE; if eager evaluation errors, replay boxed to reproduce the
    // short-circuit exactly (the error may be confined to dominated rows).
    if (!rhs_->EvaluateBatch(batch, &r).ok() || l.type != DataType::kBool ||
        r.type != DataType::kBool) {
      return BoundExpr::EvaluateBatch(batch, out);
    }
    const size_t n = batch.num_rows();
    *out = Column();
    out->type = DataType::kBool;
    out->bools.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const bool lf = !l.IsNull(i) && l.bools[i] == 0;
      const bool rf = !r.IsNull(i) && r.bools[i] == 0;
      if (lf || rf) {
        AppendBool(out, i, false);
      } else if (l.IsNull(i) || r.IsNull(i)) {
        AppendBoolNull(out, i);
      } else {
        AppendBool(out, i, true);
      }
    }
    return Status::OK();
  }

 private:
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
};

class OrExpr final : public BoundExpr {
 public:
  OrExpr(BoundExprPtr lhs, BoundExprPtr rhs)
      : BoundExpr(DataType::kBool), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<Value> Evaluate(const Row& row) const override {
    ASSIGN_OR_RETURN(Value left, lhs_->Evaluate(row));
    if (left.is_bool() && left.bool_value()) return Value::Bool(true);
    ASSIGN_OR_RETURN(Value right, rhs_->Evaluate(row));
    if (right.is_bool() && right.bool_value()) return Value::Bool(true);
    if (left.is_null() || right.is_null()) return Value::Null();
    return Value::Bool(left.bool_value() || right.bool_value());
  }

  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    Column l;
    RETURN_IF_ERROR(lhs_->EvaluateBatch(batch, &l));
    Column r;
    if (!rhs_->EvaluateBatch(batch, &r).ok() || l.type != DataType::kBool ||
        r.type != DataType::kBool) {
      return BoundExpr::EvaluateBatch(batch, out);
    }
    const size_t n = batch.num_rows();
    *out = Column();
    out->type = DataType::kBool;
    out->bools.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const bool lt = !l.IsNull(i) && l.bools[i] != 0;
      const bool rt = !r.IsNull(i) && r.bools[i] != 0;
      if (lt || rt) {
        AppendBool(out, i, true);
      } else if (l.IsNull(i) || r.IsNull(i)) {
        AppendBoolNull(out, i);
      } else {
        AppendBool(out, i, false);
      }
    }
    return Status::OK();
  }

 private:
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
};

class NotExpr final : public BoundExpr {
 public:
  explicit NotExpr(BoundExprPtr operand)
      : BoundExpr(DataType::kBool), operand_(std::move(operand)) {}
  Result<Value> Evaluate(const Row& row) const override {
    ASSIGN_OR_RETURN(Value v, operand_->Evaluate(row));
    if (v.is_null()) return Value::Null();
    if (!v.is_bool()) {
      return Status::InvalidArgument("NOT applied to non-boolean");
    }
    return Value::Bool(!v.bool_value());
  }

  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    Column in;
    RETURN_IF_ERROR(operand_->EvaluateBatch(batch, &in));
    if (in.type != DataType::kBool) {
      return BoundExpr::EvaluateBatch(batch, out);
    }
    const size_t n = batch.num_rows();
    *out = Column();
    out->type = DataType::kBool;
    out->bools.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (in.IsNull(i)) {
        AppendBoolNull(out, i);
      } else {
        AppendBool(out, i, in.bools[i] == 0);
      }
    }
    return Status::OK();
  }

 private:
  BoundExprPtr operand_;
};

class IsNullExpr final : public BoundExpr {
 public:
  IsNullExpr(BoundExprPtr operand, bool negated)
      : BoundExpr(DataType::kBool),
        operand_(std::move(operand)),
        negated_(negated) {}
  Result<Value> Evaluate(const Row& row) const override {
    ASSIGN_OR_RETURN(Value v, operand_->Evaluate(row));
    return Value::Bool(negated_ ? !v.is_null() : v.is_null());
  }

  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    Column in;
    RETURN_IF_ERROR(operand_->EvaluateBatch(batch, &in));
    const size_t n = batch.num_rows();
    *out = Column();
    out->type = DataType::kBool;
    out->bools.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      AppendBool(out, i, negated_ ? !in.IsNull(i) : in.IsNull(i));
    }
    return Status::OK();
  }

 private:
  BoundExprPtr operand_;
  bool negated_;
};

class ArithmeticExpr final : public BoundExpr {
 public:
  ArithmeticExpr(char op, DataType output, BoundExprPtr lhs, BoundExprPtr rhs)
      : BoundExpr(output), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Evaluate(const Row& row) const override {
    ASSIGN_OR_RETURN(Value left, lhs_->Evaluate(row));
    ASSIGN_OR_RETURN(Value right, rhs_->Evaluate(row));
    if (left.is_null() || right.is_null()) return Value::Null();
    if (output_type() == DataType::kInt64) {
      const int64_t l = left.int64_value();
      const int64_t r = right.int64_value();
      switch (op_) {
        case '+':
          return Value::Int64(l + r);
        case '-':
          return Value::Int64(l - r);
        case '*':
          return Value::Int64(l * r);
        case '/':
          if (r == 0) return Status::InvalidArgument("division by zero");
          return Value::Int64(l / r);
      }
    } else {
      ASSIGN_OR_RETURN(double l, left.AsDouble());
      ASSIGN_OR_RETURN(double r, right.AsDouble());
      switch (op_) {
        case '+':
          return Value::Double(l + r);
        case '-':
          return Value::Double(l - r);
        case '*':
          return Value::Double(l * r);
        case '/':
          if (r == 0.0) return Status::InvalidArgument("division by zero");
          return Value::Double(l / r);
      }
    }
    return Status::Internal("unhandled arithmetic operator");
  }

  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    Column l;
    Column r;
    RETURN_IF_ERROR(lhs_->EvaluateBatch(batch, &l));
    RETURN_IF_ERROR(rhs_->EvaluateBatch(batch, &r));
    const size_t n = batch.num_rows();
    *out = Column();
    out->type = output_type();
    if (output_type() == DataType::kInt64) {
      // The binder only derives kInt64 when both operands are kInt64.
      if (l.type != DataType::kInt64 || r.type != DataType::kInt64) {
        return BoundExpr::EvaluateBatch(batch, out);
      }
      out->ints.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          out->AppendNullBit(i, true);
          out->ints.push_back(0);
          continue;
        }
        const int64_t a = l.ints[i];
        const int64_t b = r.ints[i];
        int64_t v = 0;
        switch (op_) {
          case '+':
            v = a + b;
            break;
          case '-':
            v = a - b;
            break;
          case '*':
            v = a * b;
            break;
          case '/':
            if (b == 0) return Status::InvalidArgument("division by zero");
            v = a / b;
            break;
        }
        out->AppendNullBit(i, false);
        out->ints.push_back(v);
      }
    } else {
      if (!IsNumericType(l.type) || !IsNumericType(r.type)) {
        return BoundExpr::EvaluateBatch(batch, out);
      }
      out->doubles.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          out->AppendNullBit(i, true);
          out->doubles.push_back(0);
          continue;
        }
        const double a = NumericAt(l, i);
        const double b = NumericAt(r, i);
        double v = 0;
        switch (op_) {
          case '+':
            v = a + b;
            break;
          case '-':
            v = a - b;
            break;
          case '*':
            v = a * b;
            break;
          case '/':
            if (b == 0.0) return Status::InvalidArgument("division by zero");
            v = a / b;
            break;
        }
        out->AppendNullBit(i, false);
        out->doubles.push_back(v);
      }
    }
    return Status::OK();
  }

 private:
  char op_;
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
};

class CallExpr final : public BoundExpr {
 public:
  CallExpr(const ScalarFunction* function, DataType output,
           std::vector<BoundExprPtr> args)
      : BoundExpr(output), function_(function), args_(std::move(args)) {}

  Result<Value> Evaluate(const Row& row) const override {
    std::vector<Value> values;
    values.reserve(args_.size());
    for (const BoundExprPtr& arg : args_) {
      ASSIGN_OR_RETURN(Value v, arg->Evaluate(row));
      values.push_back(std::move(v));
    }
    ASSIGN_OR_RETURN(Value result, function_->evaluate(values));
    return Widen(std::move(result));
  }

  Status EvaluateBatch(const ColumnBatch& batch, Column* out) const override {
    // Vectorize the arguments, then box only the call itself per row.
    std::vector<Column> arg_cols(args_.size());
    for (size_t i = 0; i < args_.size(); ++i) {
      RETURN_IF_ERROR(args_[i]->EvaluateBatch(batch, &arg_cols[i]));
    }
    const size_t n = batch.num_rows();
    *out = Column();
    out->type = output_type();
    std::vector<Value> values(args_.size());
    for (size_t r = 0; r < n; ++r) {
      for (size_t i = 0; i < args_.size(); ++i) {
        values[i] = ColumnValueAt(arg_cols[i], r);
      }
      ASSIGN_OR_RETURN(Value v, function_->evaluate(values));
      RETURN_IF_ERROR(
          AppendColumnValue(out, r, Widen(std::move(v)), function_->name));
    }
    return Status::OK();
  }

 private:
  /// The declared output type wins over the runtime value type for the one
  /// lossless coercion SQL allows implicitly (e.g. COALESCE(int_col,
  /// double_col) derives kDouble but may return the int argument). Both
  /// engines apply it so typed columns and boxed rows agree.
  Value Widen(Value v) const {
    if (output_type() == DataType::kDouble && v.is_int64()) {
      return Value::Double(static_cast<double>(v.int64_value()));
    }
    return v;
  }

  const ScalarFunction* function_;
  std::vector<BoundExprPtr> args_;
};

Result<DataType> RequireNumeric(const std::vector<DataType>& args,
                                size_t arity, const char* name) {
  if (args.size() != arity) {
    return Status::InvalidArgument(std::string(name) + ": wrong arity");
  }
  for (DataType t : args) {
    if (t != DataType::kInt64 && t != DataType::kDouble) {
      return Status::InvalidArgument(std::string(name) +
                                     ": numeric argument required");
    }
  }
  return args[0];
}

}  // namespace

// ---------------------------------------------------------------------------
// ScalarFunctionRegistry

Status ScalarFunctionRegistry::Register(ScalarFunction function) {
  const std::string key = ToLowerAscii(function.name);
  if (functions_.count(key) > 0) {
    return Status::AlreadyExists("scalar function exists: " + function.name);
  }
  functions_.emplace(key, std::move(function));
  return Status::OK();
}

const ScalarFunction* ScalarFunctionRegistry::Lookup(
    const std::string& name) const {
  auto it = functions_.find(ToLowerAscii(name));
  return it == functions_.end() ? nullptr : &it->second;
}

std::shared_ptr<ScalarFunctionRegistry> ScalarFunctionRegistry::WithBuiltins() {
  auto registry = std::make_shared<ScalarFunctionRegistry>();

  auto register_checked = [&registry](ScalarFunction fn) {
    SQLINK_CHECK_OK(registry->Register(std::move(fn)));
  };

  register_checked(
      {"upper",
       [](const std::vector<DataType>& args) -> Result<DataType> {
         if (args.size() != 1 || args[0] != DataType::kString) {
           return Status::InvalidArgument("UPPER(string)");
         }
         return DataType::kString;
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         if (args[0].is_null()) return Value::Null();
         return Value::String(ToUpperAscii(args[0].string_value()));
       }});
  register_checked(
      {"lower",
       [](const std::vector<DataType>& args) -> Result<DataType> {
         if (args.size() != 1 || args[0] != DataType::kString) {
           return Status::InvalidArgument("LOWER(string)");
         }
         return DataType::kString;
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         if (args[0].is_null()) return Value::Null();
         return Value::String(ToLowerAscii(args[0].string_value()));
       }});
  register_checked(
      {"length",
       [](const std::vector<DataType>& args) -> Result<DataType> {
         if (args.size() != 1 || args[0] != DataType::kString) {
           return Status::InvalidArgument("LENGTH(string)");
         }
         return DataType::kInt64;
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         if (args[0].is_null()) return Value::Null();
         return Value::Int64(
             static_cast<int64_t>(args[0].string_value().size()));
       }});
  register_checked(
      {"abs",
       [](const std::vector<DataType>& args) {
         return RequireNumeric(args, 1, "ABS");
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         if (args[0].is_null()) return Value::Null();
         if (args[0].is_int64()) {
           return Value::Int64(std::llabs(args[0].int64_value()));
         }
         return Value::Double(std::fabs(args[0].double_value()));
       }});
  register_checked(
      {"concat",
       [](const std::vector<DataType>& args) -> Result<DataType> {
         if (args.empty()) return Status::InvalidArgument("CONCAT(...)");
         return DataType::kString;
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         std::string out;
         for (const Value& v : args) {
           if (!v.is_null()) out += v.ToString();
         }
         return Value::String(std::move(out));
       }});
  register_checked(
      {"coalesce",
       [](const std::vector<DataType>& args) -> Result<DataType> {
         if (args.empty()) return Status::InvalidArgument("COALESCE(...)");
         // Unify the argument types: equal types pass through, mixed
         // numerics widen to DOUBLE, anything else is a bind error (the
         // old args[0] answer let the runtime type contradict the derived
         // type, which typed columns cannot represent).
         DataType unified = args[0];
         for (const DataType t : args) {
           if (t == unified) continue;
           const bool both_numeric =
               (t == DataType::kInt64 || t == DataType::kDouble) &&
               (unified == DataType::kInt64 || unified == DataType::kDouble);
           if (!both_numeric) {
             return Status::InvalidArgument(
                 "COALESCE: argument types must match");
           }
           unified = DataType::kDouble;
         }
         return unified;
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         for (const Value& v : args) {
           if (!v.is_null()) return v;
         }
         return Value::Null();
       }});
  register_checked(
      {"cast_double",
       [](const std::vector<DataType>& args) -> Result<DataType> {
         if (args.size() != 1) return Status::InvalidArgument("CAST_DOUBLE(x)");
         return DataType::kDouble;
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         if (args[0].is_null()) return Value::Null();
         if (args[0].is_string()) {
           auto parsed = ParseDouble(args[0].string_value());
           if (!parsed.ok()) return parsed.status();
           return Value::Double(*parsed);
         }
         ASSIGN_OR_RETURN(double v, args[0].AsDouble());
         return Value::Double(v);
       }});
  register_checked(
      {"cast_int64",
       [](const std::vector<DataType>& args) -> Result<DataType> {
         if (args.size() != 1) return Status::InvalidArgument("CAST_INT64(x)");
         return DataType::kInt64;
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         if (args[0].is_null()) return Value::Null();
         if (args[0].is_string()) {
           auto parsed = ParseInt64(args[0].string_value());
           if (!parsed.ok()) return parsed.status();
           return Value::Int64(*parsed);
         }
         ASSIGN_OR_RETURN(double v, args[0].AsDouble());
         return Value::Int64(static_cast<int64_t>(v));
       }});
  register_checked(
      {"cast_string",
       [](const std::vector<DataType>& args) -> Result<DataType> {
         if (args.size() != 1) return Status::InvalidArgument("CAST_STRING(x)");
         return DataType::kString;
       },
       [](const std::vector<Value>& args) -> Result<Value> {
         if (args[0].is_null()) return Value::Null();
         return Value::String(args[0].ToString());
       }});
  return registry;
}

bool IsAggregateFunctionName(const std::string& name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "min") || EqualsIgnoreCase(name, "max") ||
         EqualsIgnoreCase(name, "avg");
}

BoundExprPtr MakeColumnReference(int index, DataType type) {
  return BoundExprPtr(new ColumnExpr(index, type));
}

// ---------------------------------------------------------------------------
// Binder

Result<BoundExprPtr> BindExpression(const Expr& expr, const NameScope& scope,
                                    const ScalarFunctionRegistry& registry) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      ASSIGN_OR_RETURN(NameScope::Resolution res,
                       scope.Resolve(expr.qualifier, expr.column));
      return BoundExprPtr(new ColumnExpr(res.index, res.type));
    }
    case ExprKind::kLiteral:
      return BoundExprPtr(new LiteralExpr(expr.literal));
    case ExprKind::kComparison: {
      ASSIGN_OR_RETURN(CompareOp op, CompareOpFromString(expr.op));
      ASSIGN_OR_RETURN(BoundExprPtr lhs,
                       BindExpression(*expr.children[0], scope, registry));
      ASSIGN_OR_RETURN(BoundExprPtr rhs,
                       BindExpression(*expr.children[1], scope, registry));
      return BoundExprPtr(
          new ComparisonExpr(op, std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kAnd: {
      ASSIGN_OR_RETURN(BoundExprPtr lhs,
                       BindExpression(*expr.children[0], scope, registry));
      ASSIGN_OR_RETURN(BoundExprPtr rhs,
                       BindExpression(*expr.children[1], scope, registry));
      return BoundExprPtr(new AndExpr(std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kOr: {
      ASSIGN_OR_RETURN(BoundExprPtr lhs,
                       BindExpression(*expr.children[0], scope, registry));
      ASSIGN_OR_RETURN(BoundExprPtr rhs,
                       BindExpression(*expr.children[1], scope, registry));
      return BoundExprPtr(new OrExpr(std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kNot: {
      ASSIGN_OR_RETURN(BoundExprPtr operand,
                       BindExpression(*expr.children[0], scope, registry));
      return BoundExprPtr(new NotExpr(std::move(operand)));
    }
    case ExprKind::kIsNull: {
      ASSIGN_OR_RETURN(BoundExprPtr operand,
                       BindExpression(*expr.children[0], scope, registry));
      return BoundExprPtr(new IsNullExpr(std::move(operand), expr.is_not_null));
    }
    case ExprKind::kArithmetic: {
      ASSIGN_OR_RETURN(BoundExprPtr lhs,
                       BindExpression(*expr.children[0], scope, registry));
      ASSIGN_OR_RETURN(BoundExprPtr rhs,
                       BindExpression(*expr.children[1], scope, registry));
      const DataType lt = lhs->output_type();
      const DataType rt = rhs->output_type();
      const bool numeric =
          (lt == DataType::kInt64 || lt == DataType::kDouble) &&
          (rt == DataType::kInt64 || rt == DataType::kDouble);
      if (!numeric) {
        return Status::InvalidArgument("arithmetic on non-numeric operands: " +
                                       expr.ToString());
      }
      const DataType output =
          (lt == DataType::kDouble || rt == DataType::kDouble)
              ? DataType::kDouble
              : DataType::kInt64;
      return BoundExprPtr(
          new ArithmeticExpr(expr.op[0], output, std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kFunctionCall: {
      if (IsAggregateFunctionName(expr.function_name)) {
        return Status::InvalidArgument(
            "aggregate function not allowed here: " + expr.function_name);
      }
      const ScalarFunction* function = registry.Lookup(expr.function_name);
      if (function == nullptr) {
        return Status::NotFound("unknown scalar function: " +
                                expr.function_name);
      }
      std::vector<BoundExprPtr> args;
      std::vector<DataType> arg_types;
      for (const ExprPtr& child : expr.children) {
        ASSIGN_OR_RETURN(BoundExprPtr arg,
                         BindExpression(*child, scope, registry));
        arg_types.push_back(arg->output_type());
        args.push_back(std::move(arg));
      }
      ASSIGN_OR_RETURN(DataType output, function->derive_type(arg_types));
      return BoundExprPtr(new CallExpr(function, output, std::move(args)));
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace sqlink
