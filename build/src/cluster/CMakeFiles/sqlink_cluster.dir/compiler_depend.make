# Empty compiler generated dependencies file for sqlink_cluster.
# This may be replaced when dependencies are built.
