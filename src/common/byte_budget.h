#ifndef SQLINK_COMMON_BYTE_BUDGET_H_
#define SQLINK_COMMON_BYTE_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace sqlink {

/// A non-blocking byte quota shared by all spill queues of one query (and,
/// at the serving layer, carved out of the global admission memory pool).
/// Producers TryCharge() before writing spill bytes; when the budget is
/// exhausted they fall back to backpressure (parking on their queue's
/// producer condvar) instead of growing the shared spill directory.
/// Consumers Release() as spill bytes are drained or discarded.
///
/// capacity <= 0 means unlimited: TryCharge always succeeds and nothing is
/// tracked beyond the used counter.
class ByteBudget {
 public:
  explicit ByteBudget(int64_t capacity) : capacity_(capacity) {}

  /// Attempts to reserve `bytes`; returns false (reserving nothing) if the
  /// budget would be exceeded. Never blocks.
  bool TryCharge(int64_t bytes) {
    if (bytes <= 0) return true;
    if (capacity_ <= 0) {
      used_.fetch_add(bytes, std::memory_order_relaxed);
      return true;
    }
    int64_t cur = used_.load(std::memory_order_relaxed);
    while (true) {
      if (cur + bytes > capacity_) return false;
      if (used_.compare_exchange_weak(cur, cur + bytes,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Returns `bytes` to the budget. Clamps at zero so a double-release bug
  /// degrades to a slightly generous budget instead of wrapping negative.
  void Release(int64_t bytes) {
    if (bytes <= 0) return;
    int64_t cur = used_.load(std::memory_order_relaxed);
    while (true) {
      const int64_t next = cur > bytes ? cur - bytes : 0;
      if (used_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t capacity() const { return capacity_; }
  bool unlimited() const { return capacity_ <= 0; }

 private:
  const int64_t capacity_;
  std::atomic<int64_t> used_{0};
};

using ByteBudgetPtr = std::shared_ptr<ByteBudget>;

}  // namespace sqlink

#endif  // SQLINK_COMMON_BYTE_BUDGET_H_
