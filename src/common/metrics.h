#ifndef SQLINK_COMMON_METRICS_H_
#define SQLINK_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sqlink {

/// Thread-safe named counter registry. Subsystems record operational facts
/// (bytes streamed, rows spilled, cache hits) that tests and benchmarks
/// assert on or report.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }

  void Increment(const std::string& name) { Add(name, 1); }

  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
  }

  /// Process-wide registry shared by subsystems that have no natural owner.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_METRICS_H_
