#include "sql/engine.h"

#include "common/status_macros.h"

namespace sqlink {

SqlEngine::SqlEngine(ClusterPtr cluster, MetricsRegistry* metrics)
    : cluster_(std::move(cluster)),
      num_workers_(cluster_->num_nodes()),
      metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Global()),
      scalar_udfs_(ScalarFunctionRegistry::WithBuiltins()) {}

std::shared_ptr<SqlEngine> SqlEngine::Make(ClusterPtr cluster,
                                           MetricsRegistry* metrics) {
  return std::shared_ptr<SqlEngine>(new SqlEngine(std::move(cluster), metrics));
}

Result<PlanPtr> SqlEngine::Plan(const std::string& sql) {
  ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  return PlanStmt(stmt);
}

Result<PlanPtr> SqlEngine::PlanStmt(const SelectStmt& stmt) {
  Planner planner(&catalog_, scalar_udfs_.get(), &table_udfs_, num_workers_,
                  planner_options_);
  return planner.PlanSelect(stmt);
}

Result<std::string> SqlEngine::ExplainSql(const std::string& sql) {
  ASSIGN_OR_RETURN(PlanPtr plan, Plan(sql));
  return PlanTreeToString(plan);
}

Result<TablePtr> SqlEngine::ExecuteSql(const std::string& sql,
                                       const std::string& result_name) {
  ASSIGN_OR_RETURN(PlanPtr plan, Plan(sql));
  return ExecutePlan(plan, result_name);
}

Result<TablePtr> SqlEngine::ExecuteStmt(const SelectStmt& stmt,
                                        const std::string& result_name) {
  ASSIGN_OR_RETURN(PlanPtr plan, PlanStmt(stmt));
  return ExecutePlan(plan, result_name);
}

Result<TablePtr> SqlEngine::ExecutePlan(const PlanPtr& plan,
                                        const std::string& result_name) {
  Executor executor(num_workers_, cluster_, metrics_);
  ASSIGN_OR_RETURN(PartitionedRows rows, executor.Execute(plan));
  auto table = std::make_shared<Table>(result_name, rows.schema,
                                       rows.partitions.size());
  for (size_t p = 0; p < rows.partitions.size(); ++p) {
    table->mutable_partition(p) = std::move(rows.partitions[p]);
  }
  return table;
}

Result<TablePtr> SqlEngine::MaterializeSql(const std::string& sql,
                                           const std::string& table_name) {
  ASSIGN_OR_RETURN(TablePtr table, ExecuteSql(sql, table_name));
  catalog_.PutTable(table);
  return table;
}

TablePtr SqlEngine::MakeTable(const std::string& name, SchemaPtr schema) const {
  return std::make_shared<Table>(name, std::move(schema),
                                 static_cast<size_t>(num_workers_));
}

}  // namespace sqlink
