file(REMOVE_RECURSE
  "CMakeFiles/sqlink_sql.dir/ast.cc.o"
  "CMakeFiles/sqlink_sql.dir/ast.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/catalog.cc.o"
  "CMakeFiles/sqlink_sql.dir/catalog.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/engine.cc.o"
  "CMakeFiles/sqlink_sql.dir/engine.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/executor.cc.o"
  "CMakeFiles/sqlink_sql.dir/executor.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/expr.cc.o"
  "CMakeFiles/sqlink_sql.dir/expr.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/lexer.cc.o"
  "CMakeFiles/sqlink_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/parser.cc.o"
  "CMakeFiles/sqlink_sql.dir/parser.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/plan.cc.o"
  "CMakeFiles/sqlink_sql.dir/plan.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/planner.cc.o"
  "CMakeFiles/sqlink_sql.dir/planner.cc.o.d"
  "CMakeFiles/sqlink_sql.dir/table_udf.cc.o"
  "CMakeFiles/sqlink_sql.dir/table_udf.cc.o.d"
  "libsqlink_sql.a"
  "libsqlink_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
