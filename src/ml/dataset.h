#ifndef SQLINK_ML_DATASET_H_
#define SQLINK_ML_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/vector_ops.h"
#include "table/column_batch.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink::ml {

/// One training example.
struct LabeledPoint {
  double label = 0;
  DenseVector features;

  bool operator==(const LabeledPoint& other) const = default;
};

/// Typed rows held in memory, one slice per ML worker — the ingestion
/// output before feature extraction (the "in-memory RDD" of the paper's
/// Spark measurements).
struct RowDataset {
  SchemaPtr schema;
  std::vector<std::vector<Row>> partitions;

  size_t TotalRows() const {
    size_t total = 0;
    for (const auto& p : partitions) total += p.size();
    return total;
  }
};

/// Columnar counterpart of RowDataset: one ColumnBatch per ML worker, as
/// produced by the columnar ingest path (no boxed Value rows anywhere
/// between the wire and feature extraction).
struct ColumnDataset {
  SchemaPtr schema;
  std::vector<ColumnBatch> partitions;

  size_t TotalRows() const {
    size_t total = 0;
    for (const ColumnBatch& p : partitions) total += p.num_rows();
    return total;
  }
};

/// LabeledPoints partitioned across ML workers; what the training
/// algorithms consume.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::vector<LabeledPoint>> partitions, size_t dimension)
      : partitions_(std::move(partitions)), dimension_(dimension) {}

  /// Converts rows to labeled points: `label_column` holds the label,
  /// `feature_columns` the features; all must be numeric (NULLs become 0 —
  /// transformed ML input has no NULLs in practice).
  static Result<Dataset> FromRows(const RowDataset& rows,
                                  const std::string& label_column,
                                  const std::vector<std::string>& feature_columns);

  /// Uses every column except `label_column` as a feature, in schema order.
  static Result<Dataset> FromRowsAutoFeatures(const RowDataset& rows,
                                              const std::string& label_column);

  /// Columnar ingest: gathers features straight from the typed column
  /// vectors — no Value boxing per cell. Same semantics as FromRows (NULLs
  /// and non-numeric labels become 0; STRING features are rejected).
  static Result<Dataset> FromColumns(
      const ColumnDataset& columns, const std::string& label_column,
      const std::vector<std::string>& feature_columns);

  static Result<Dataset> FromColumnsAutoFeatures(
      const ColumnDataset& columns, const std::string& label_column);

  const std::vector<std::vector<LabeledPoint>>& partitions() const {
    return partitions_;
  }
  std::vector<std::vector<LabeledPoint>>& mutable_partitions() {
    return partitions_;
  }
  size_t dimension() const { return dimension_; }
  size_t num_partitions() const { return partitions_.size(); }

  size_t TotalPoints() const {
    size_t total = 0;
    for (const auto& p : partitions_) total += p.size();
    return total;
  }

  /// All points concatenated (tests, small data).
  std::vector<LabeledPoint> Gather() const {
    std::vector<LabeledPoint> all;
    all.reserve(TotalPoints());
    for (const auto& p : partitions_) {
      all.insert(all.end(), p.begin(), p.end());
    }
    return all;
  }

 private:
  std::vector<std::vector<LabeledPoint>> partitions_;
  size_t dimension_ = 0;
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_DATASET_H_
