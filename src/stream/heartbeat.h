#ifndef SQLINK_STREAM_HEARTBEAT_H_
#define SQLINK_STREAM_HEARTBEAT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "stream/socket.h"
#include "stream/wire.h"

namespace sqlink {

/// The participant half of the coordinator's lease protocol: a background
/// thread that renews a sink's or reader's lease every interval on a
/// persistent control connection, and watches the replies for revocation.
///
/// A lease is lost three ways, all surfaced through revoked()/status():
///  - the coordinator fenced this holder (a newer epoch owns the split);
///  - the coordinator broadcast a query abort (typed kAborted status);
///  - self-fencing: no successful ack within the lease TTL — the holder
///    must assume the coordinator already reassigned its split and stop
///    producing side effects *before* a replacement starts.
class HeartbeatSender {
 public:
  struct Options {
    std::string coordinator_host;
    int coordinator_port = 0;
    int interval_ms = 0;  ///< <= 0 disables heartbeats entirely.
    uint8_t role = HeartbeatMessage::kSink;
    int id = 0;           ///< Split id (reader) or SQL worker id (sink).
    int64_t epoch = 1;
    /// Failpoint evaluated before each beat (delay specs simulate a stalled
    /// participant); empty = none.
    std::string failpoint_name;
    /// Invoked once, from the heartbeat thread, when the lease is lost.
    std::function<void()> on_revoked;
  };

  /// Lease TTL as a multiple of the heartbeat interval — shared with the
  /// coordinator's reaper so self-fencing always precedes reassignment
  /// (the reaper adds a grace period on top).
  static constexpr int kLeaseIntervals = 3;

  explicit HeartbeatSender(Options options);
  ~HeartbeatSender();

  HeartbeatSender(const HeartbeatSender&) = delete;
  HeartbeatSender& operator=(const HeartbeatSender&) = delete;

  /// Starts the beat loop (no-op when interval_ms <= 0).
  void Start();

  /// Stops the loop. A bye other than kAlive is delivered best-effort as a
  /// final beat so the coordinator drops (kCompleted) or immediately
  /// reassigns (kFailed) the lease instead of waiting out the TTL.
  /// Idempotent; kAlive simulates a crash — the lease just expires.
  void Stop(uint8_t bye);

  /// Reader progress carried in each beat (observability).
  void set_applied_seq(uint64_t seq) {
    applied_seq_.store(seq, std::memory_order_relaxed);
  }

  bool enabled() const { return options_.interval_ms > 0; }
  bool revoked() const { return revoked_.load(std::memory_order_acquire); }
  /// Why the lease was lost (OK while the lease is healthy).
  Status status() const;

 private:
  void Loop();
  /// One beat on the persistent control connection (re-dialed on error).
  Status BeatOnce(uint8_t bye);
  void MarkRevoked(Status status);

  Options options_;
  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<bool> revoked_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  Status status_;
  TcpSocket control_;  ///< Owned by the beat thread (and final-bye sender).
  std::thread thread_;
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_HEARTBEAT_H_
