#ifndef SQLINK_COMMON_RETRY_POLICY_H_
#define SQLINK_COMMON_RETRY_POLICY_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>

#include "common/random.h"
#include "common/result.h"

namespace sqlink {

namespace retry_internal {
inline const Status& ToStatus(const Status& status) { return status; }
template <typename T>
Status ToStatus(const Result<T>& result) {
  return result.status();
}
}  // namespace retry_internal

/// Deadline-capped exponential backoff with seeded jitter — the one retry
/// discipline shared by every transfer-layer reconnect loop (sink
/// registration, ML-worker waits, reader dials). Delay i has base
/// min(initial * multiplier^i, max), multiplied by a jitter factor uniform
/// in [1-jitter, 1+jitter]; delays are clamped so their sum never exceeds
/// the deadline. For a fixed seed the delay sequence is fully deterministic.
class RetryPolicy {
 public:
  struct Options {
    int initial_delay_ms = 10;
    int max_delay_ms = 1000;
    double multiplier = 2.0;
    double jitter = 0.2;      ///< Fraction of the base; 0 disables jitter.
    int deadline_ms = 30000;  ///< Budget for the *sum* of all delays.
    int max_attempts = 0;     ///< 0 = bounded by the deadline only.
    uint64_t seed = 0;        ///< Seeds the jitter RNG.
  };

  explicit RetryPolicy(Options options)
      : options_(options), rng_(options.seed) {}

  /// The backoff to wait before the next retry, or nullopt once the policy
  /// is exhausted (attempt cap reached or delay budget spent). Exhaustion is
  /// permanent. Never sleeps.
  std::optional<std::chrono::milliseconds> NextDelay();

  /// NextDelay() plus the actual sleep; false when exhausted.
  bool Backoff();

  int attempts() const { return attempts_; }
  /// Total backoff handed out so far.
  int64_t total_delay_ms() const { return total_delay_ms_; }

  /// Runs `op` (returning Status or Result<T>) until it succeeds, fails
  /// non-transiently, or the policy is exhausted; returns the last outcome.
  /// `retryable` decides which errors are worth another attempt.
  template <typename Op, typename Retryable = bool (*)(const Status&)>
  auto Run(Op&& op, Retryable retryable = &RetryPolicy::IsTransient)
      -> decltype(op()) {
    for (;;) {
      auto outcome = op();
      const Status status = retry_internal::ToStatus(outcome);
      if (status.ok() || !retryable(status)) return outcome;
      if (!Backoff()) return outcome;
    }
  }

  /// Default transience test: connectivity-shaped failures.
  static bool IsTransient(const Status& status) {
    return status.IsNetworkError() || status.IsUnavailable();
  }

 private:
  Options options_;
  Random rng_;
  int attempts_ = 0;
  int64_t total_delay_ms_ = 0;
  bool exhausted_ = false;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_RETRY_POLICY_H_
