file(REMOVE_RECURSE
  "libsqlink_table.a"
)
