// Concurrency and endurance tests: shared-engine query concurrency,
// concurrent DFS traffic, repeated streaming transfers (socket/thread
// cleanup), and concurrent transformation runs.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/random.h"
#include "dfs/dfs.h"
#include "pipeline/datagen.h"
#include "sql/engine.h"
#include "stream/streaming_transfer.h"
#include "transform/transformer.h"

namespace sqlink {
namespace {

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("stress_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    cluster_ = *cluster;
    engine_ = SqlEngine::Make(cluster_);
    CartsWorkloadOptions data;
    data.num_users = 300;
    data.num_carts = 3000;
    ASSERT_TRUE(GenerateCartsWorkload(engine_.get(), data).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  ClusterPtr cluster_;
  SqlEnginePtr engine_;
};

TEST_F(StressTest, ConcurrentQueriesOnSharedEngine) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string queries[] = {
          "SELECT COUNT(*) FROM carts",
          "SELECT gender, COUNT(*) FROM users GROUP BY gender",
          "SELECT U.age, C.amount FROM carts C, users U "
          "WHERE C.userid = U.userid AND U.country = 'USA'",
          "SELECT DISTINCT abandoned FROM carts",
      };
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto result = engine_->ExecuteSql(queries[(t + q) % 4]);
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(StressTest, ConcurrentCatalogMutations) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        const std::string name =
            "scratch_" + std::to_string(t) + "_" + std::to_string(i);
        auto table = engine_->MaterializeSql(
            "SELECT userid FROM users WHERE userid < " + std::to_string(i),
            name);
        if (!table.ok() || !engine_->catalog()->DropTable(name).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(StressTest, ConcurrentDfsReadersAndWriters) {
  DfsOptions options;
  options.block_size = 1024;
  auto dfs = std::make_shared<Dfs>(cluster_, options);
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t));
      for (int i = 0; i < 15; ++i) {
        const std::string path =
            "stress/" + std::to_string(t) + "/" + std::to_string(i);
        const std::string content = rng.NextString(3000 + rng.Uniform(3000));
        if (!dfs->WriteString(path, content).ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto read = dfs->ReadString(path);
        if (!read.ok() || *read != content) failures.fetch_add(1);
        if (i % 3 == 0 && !dfs->Delete(path).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(StressTest, RepeatedStreamingTransfersCleanUp) {
  // Back-to-back transfers must not leak ports, threads or coordinator
  // state (each run starts/stops its own coordinator).
  for (int run = 0; run < 10; ++run) {
    StreamTransferOptions options;
    options.splits_per_worker = 1 + run % 3;
    auto result = StreamingTransfer::Run(
        engine_.get(), "SELECT cartid, amount FROM carts", options);
    ASSERT_TRUE(result.ok()) << "run " << run << ": " << result.status();
    ASSERT_EQ(result->dataset.TotalRows(), 3000u) << "run " << run;
  }
}

TEST_F(StressTest, ConcurrentRecodeMapComputations) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      InSqlTransformer transformer(engine_);
      for (int i = 0; i < 5; ++i) {
        auto map = transformer.ComputeRecodeMap(
            "SELECT gender, abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid",
            {"gender", "abandoned"});
        if (!map.ok() || map->Cardinality("gender") != 2 ||
            map->Cardinality("abandoned") != 2) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace sqlink
