# Empty compiler generated dependencies file for sqlink_mq.
# This may be replaced when dependencies are built.
