#ifndef SQLINK_SQL_PARSER_H_
#define SQLINK_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace sqlink {

/// Parses one SELECT statement (optionally ';'-terminated).
///
/// Grammar (recursive descent):
///   select    := SELECT [DISTINCT] items FROM tableref (',' tableref)*
///                [WHERE expr] [GROUP BY expr (',' expr)*]
///                [ORDER BY expr [DESC|ASC] (',' ...)*] [LIMIT int]
///   tableref  := name [AS alias]
///              | TABLE '(' name '(' arg (',' arg)* ')' ')' [AS alias]
///              | '(' select ')' [AS alias]
///   arg       := expr | '(' select ')'
///   expr      := or-chain of AND-chains of NOT/comparison over
///                additive/multiplicative arithmetic and primaries
Result<SelectStmt> ParseSelect(const std::string& sql);

/// Parses one statement: `[EXPLAIN [ANALYZE]] select`. ExecuteSql goes
/// through this so EXPLAIN is a first-class statement, not string surgery.
Result<SqlStatement> ParseStatement(const std::string& sql);

/// Parses a scalar expression on its own (used by tests and the rewriter).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace sqlink

#endif  // SQLINK_SQL_PARSER_H_
