file(REMOVE_RECURSE
  "CMakeFiles/sqlink_transform.dir/coding.cc.o"
  "CMakeFiles/sqlink_transform.dir/coding.cc.o.d"
  "CMakeFiles/sqlink_transform.dir/recode_map.cc.o"
  "CMakeFiles/sqlink_transform.dir/recode_map.cc.o.d"
  "CMakeFiles/sqlink_transform.dir/transformer.cc.o"
  "CMakeFiles/sqlink_transform.dir/transformer.cc.o.d"
  "CMakeFiles/sqlink_transform.dir/udfs.cc.o"
  "CMakeFiles/sqlink_transform.dir/udfs.cc.o.d"
  "libsqlink_transform.a"
  "libsqlink_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
