# Empty compiler generated dependencies file for sqlink_cache.
# This may be replaced when dependencies are built.
