file(REMOVE_RECURSE
  "libsqlink_rewriter.a"
)
