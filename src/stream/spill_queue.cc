#include "stream/spill_queue.h"

#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace sqlink {

SpillingByteQueue::SpillingByteQueue(Options options)
    : options_(std::move(options)),
      depth_frames_(
          MetricsRegistry::Global().GetGauge("stream.spill.queue_depth_frames")),
      depth_bytes_(
          MetricsRegistry::Global().GetGauge("stream.spill.queue_depth_bytes")),
      spill_frames_total_(
          MetricsRegistry::Global().GetCounter("stream.spill.spilled_frames")),
      spill_bytes_total_(
          MetricsRegistry::Global().GetCounter("stream.spill.spilled_bytes")),
      drain_frames_total_(
          MetricsRegistry::Global().GetCounter("stream.spill.drained_frames")),
      spill_write_micros_(
          MetricsRegistry::Global().GetHistogram("stream.spill.write_micros")),
      spill_read_micros_(
          MetricsRegistry::Global().GetHistogram("stream.spill.read_micros")) {
  SQLINK_CHECK(!options_.spill_enabled || !options_.spill_path.empty())
      << "spill enabled without a spill path";
}

SpillingByteQueue::~SpillingByteQueue() {
  // Undo this queue's contribution to the shared depth gauges for anything
  // still enqueued (cancelled or abandoned mid-stream).
  const int64_t live_frames = static_cast<int64_t>(memory_.size()) +
                              (spill_written_ - spill_read_);
  if (live_frames > 0) depth_frames_->Add(-live_frames);
  if (memory_bytes_ > 0) depth_bytes_->Add(-static_cast<int64_t>(memory_bytes_));
  if (spill_out_.is_open()) spill_out_.close();
  if (spill_in_.is_open()) spill_in_.close();
  if (!options_.spill_path.empty() && spill_written_ > 0) {
    std::remove(options_.spill_path.c_str());
  }
}

Status SpillingByteQueue::Push(std::string frame) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cancelled_) return Status::Cancelled("queue cancelled");
    if (producer_closed_) {
      return Status::FailedPrecondition("push after CloseProducer");
    }
    if (!spilling_ &&
        (memory_bytes_ + frame.size() <= options_.memory_capacity_bytes ||
         memory_.empty())) {
      // An oversized frame is admitted alone so progress is possible.
      memory_bytes_ += frame.size();
      depth_frames_->Increment();
      depth_bytes_->Add(static_cast<int64_t>(frame.size()));
      memory_.push_back(std::move(frame));
      consumer_cv_.notify_one();
      return Status::OK();
    }
    if (options_.spill_enabled &&
        SQLINK_FAILPOINT("stream.spill.write") == FailpointOutcome::kNone) {
      // An injected spill failure is evaluated before any bytes reach disk,
      // so the queue can degrade to backpressure instead of corrupting the
      // spill file; genuine write failures below still fail hard.
      if (!spill_out_.is_open()) {
        spill_out_.open(options_.spill_path,
                        std::ios::binary | std::ios::trunc);
        if (!spill_out_) {
          return Status::IoError("cannot open spill file " +
                                 options_.spill_path);
        }
      }
      spilling_ = true;
      TraceSpan span("spill.write");
      Stopwatch timer;
      std::string record;
      PutFixed32(&record, static_cast<uint32_t>(frame.size()));
      record += frame;
      spill_out_.write(record.data(),
                       static_cast<std::streamsize>(record.size()));
      spill_out_.flush();
      if (!spill_out_) {
        span.SetError();
        return Status::IoError("spill write failed: " + options_.spill_path);
      }
      ++spill_written_;
      spilled_bytes_ += static_cast<int64_t>(frame.size());
      spill_write_micros_->Record(timer.ElapsedMicros());
      spill_frames_total_->Increment();
      spill_bytes_total_->Add(static_cast<int64_t>(frame.size()));
      depth_frames_->Increment();
      span.AddAttribute("bytes", static_cast<int64_t>(frame.size()));
      consumer_cv_.notify_one();
      return Status::OK();
    }
    // Backpressure: wait for the consumer.
    producer_cv_.wait(lock);
  }
}

void SpillingByteQueue::CloseProducer() {
  std::lock_guard<std::mutex> lock(mu_);
  producer_closed_ = true;
  consumer_cv_.notify_all();
}

Result<std::optional<std::string>> SpillingByteQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cancelled_) return Status::Cancelled("queue cancelled");
    if (!memory_.empty()) {
      std::string frame = std::move(memory_.front());
      memory_.pop_front();
      memory_bytes_ -= frame.size();
      depth_frames_->Decrement();
      depth_bytes_->Add(-static_cast<int64_t>(frame.size()));
      producer_cv_.notify_one();
      return std::optional<std::string>(std::move(frame));
    }
    if (spill_read_ < spill_written_) {
      if (SQLINK_FAILPOINT("stream.spill.read") != FailpointOutcome::kNone) {
        return Status::IoError("failpoint: injected spill read error");
      }
      if (!spill_in_.is_open()) {
        spill_in_.open(options_.spill_path, std::ios::binary);
        if (!spill_in_) {
          return Status::IoError("cannot open spill file for read: " +
                                 options_.spill_path);
        }
      }
      TraceSpan span("spill.drain");
      Stopwatch timer;
      char header[4];
      spill_in_.read(header, 4);
      uint32_t length = 0;
      std::memcpy(&length, header, 4);
      std::string frame(length, '\0');
      spill_in_.read(frame.data(), static_cast<std::streamsize>(length));
      if (!spill_in_) {
        span.SetError();
        return Status::IoError("spill read failed: " + options_.spill_path);
      }
      ++spill_read_;
      spill_read_micros_->Record(timer.ElapsedMicros());
      drain_frames_total_->Increment();
      depth_frames_->Decrement();
      span.AddAttribute("bytes", static_cast<int64_t>(length));
      if (spill_read_ == spill_written_) {
        // Disk backlog drained; producer may use memory again.
        spilling_ = false;
        producer_cv_.notify_one();
      }
      return std::optional<std::string>(std::move(frame));
    }
    if (producer_closed_) return std::optional<std::string>();
    consumer_cv_.wait(lock);
  }
}

void SpillingByteQueue::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

int64_t SpillingByteQueue::spilled_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_written_;
}

int64_t SpillingByteQueue::spilled_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spilled_bytes_;
}

}  // namespace sqlink
