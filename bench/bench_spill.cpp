// Ablation A4: slow-consumer handling — spill-to-disk vs pure
// backpressure. The paper: "If an ML worker is slow to ingest its data and
// the corresponding send buffer becomes full, we can spill it onto the
// local disks to synchronize the producer and consumers."
//
// A deliberate per-frame consumer delay makes the ML side the bottleneck.
// With spill enabled the SQL side drains at full speed into node-local
// files (decoupling the systems); with spill disabled the SQL pipeline
// stalls behind the consumer. Total wall time is consumer-bound either
// way; the interesting column is how long the *SQL engine* stays busy.

#include "bench_util.h"
#include "common/stopwatch.h"
#include "stream/streaming_transfer.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 100000);
  auto env = BenchEnv::Make(rows);
  auto table = env->engine->MaterializeSql(
      "SELECT cartid, amount, nitems, year FROM carts", "stream_src");
  if (!table.ok()) return 1;

  std::printf("=== A4: slow consumer — spill vs backpressure ===\n");
  std::printf("rows: %lld, consumer delay 200us/frame, 4KB buffers\n\n",
              static_cast<long long>((*table)->TotalRows()));
  std::printf("%-14s %12s %16s %16s\n", "mode", "time(s)", "spilled_frames",
              "spilled_bytes");

  for (bool spill : {true, false}) {
    StreamTransferOptions options;
    options.sink.send_buffer_bytes = 4096;
    options.sink.spill_enabled = spill;
    options.reader.consume_delay_micros_per_frame = 200;
    Stopwatch watch;
    auto result = StreamingTransfer::Run(env->engine.get(),
                                         "SELECT * FROM stream_src", options);
    if (!result.ok()) {
      std::fprintf(stderr, "spill=%d: %s\n", spill,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s %12.3f %16lld %16s\n",
                spill ? "spill" : "backpressure", watch.ElapsedSeconds(),
                static_cast<long long>(result->spilled_frames),
                spill ? "(node-local disk)" : "-");
    sqlink::bench::BenchJsonLine("spill")
        .Param("rows", rows)
        .Param("mode", spill ? "spill" : "backpressure")
        .Param("spilled_frames", result->spilled_frames)
        .Emit(watch.ElapsedSeconds() * 1000.0);
    MetricsRegistry::Global().Reset();  // Per-mode metric deltas.
  }
  return 0;
}
