#ifndef SQLINK_TABLE_SCHEMA_H_
#define SQLINK_TABLE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace sqlink {

/// A named, typed column.
struct Field {
  std::string name;
  DataType type = DataType::kString;

  bool operator==(const Field& other) const = default;
};

/// An ordered list of fields. Column-name lookup is case-insensitive, as in
/// SQL. Schemas are immutable once constructed and shared by pointer.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static std::shared_ptr<const Schema> Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  const std::vector<Field>& fields() const { return fields_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }

  /// Index of the column with the given name (case-insensitive), or -1.
  int FieldIndex(std::string_view name) const;

  /// Like FieldIndex but errors with the schema rendered for context.
  Result<int> RequireField(std::string_view name) const;

  bool HasField(std::string_view name) const { return FieldIndex(name) >= 0; }

  /// "name:TYPE, name:TYPE, ..." — diagnostics only.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace sqlink

#endif  // SQLINK_TABLE_SCHEMA_H_
