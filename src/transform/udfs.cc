#include "transform/udfs.h"

#include "common/runtime_flags.h"
#include "common/status_macros.h"
#include "common/string_dict.h"
#include "common/string_util.h"
#include "table/column_batch.h"
#include "transform/kernels.h"

namespace sqlink {

// ---------------------------------------------------------------------------
// RecodeLocalDistinctUdf

Result<SchemaPtr> RecodeLocalDistinctUdf::Bind(const SchemaPtr& input_schema,
                                               const std::vector<Value>& args) {
  if (input_schema == nullptr) {
    return Status::InvalidArgument(
        "recode_local_distinct needs an input relation");
  }
  if (args.size() != 1 || !args[0].is_string()) {
    return Status::InvalidArgument(
        "recode_local_distinct needs a 'col1,col2' string argument");
  }
  for (const std::string& name : SplitString(args[0].string_value(), ',')) {
    const std::string trimmed(TrimWhitespace(name));
    ASSIGN_OR_RETURN(int index, input_schema->RequireField(trimmed));
    if (input_schema->field(index).type != DataType::kString) {
      return Status::InvalidArgument(
          "recoding applies to categorical (STRING) columns; '" + trimmed +
          "' is " +
          std::string(DataTypeToString(input_schema->field(index).type)));
    }
    column_indices_.push_back(index);
    // Column names are canonicalized to lower case in recode maps so the
    // rewritten SQL's colname predicates match regardless of schema casing.
    column_names_.push_back(ToLowerAscii(input_schema->field(index).name));
  }
  if (column_indices_.empty()) {
    return Status::InvalidArgument("no columns to recode");
  }
  return Schema::Make(
      {{"colname", DataType::kString}, {"colval", DataType::kString}});
}

Status RecodeLocalDistinctUdf::ProcessPartition(const TableUdfContext& context,
                                                RowIterator* input,
                                                RowSink* output) {
  (void)context;
  // One local scan computes the distinct values of *all* columns (§2.1).
  // Each column's seen-set is an open-addressing StringDict: one hash and
  // no node or string allocation per already-seen value.
  std::vector<StringDict> seen(column_indices_.size());
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, input->Next(&row));
    if (!has) break;
    for (size_t c = 0; c < column_indices_.size(); ++c) {
      const Value& value = row[static_cast<size_t>(column_indices_[c])];
      if (value.is_null()) continue;
      const int32_t before = seen[c].size();
      if (seen[c].GetOrAdd(value.string_value()) == before) {
        RETURN_IF_ERROR(output->Push(Row{Value::String(column_names_[c]),
                                         value}));
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RecodeAssignUdf

Result<SchemaPtr> RecodeAssignUdf::Bind(const SchemaPtr& input_schema,
                                        const std::vector<Value>& args) {
  if (!args.empty()) {
    return Status::InvalidArgument("recode_assign takes no scalar arguments");
  }
  if (input_schema == nullptr || input_schema->num_fields() != 2 ||
      input_schema->field(0).type != DataType::kString ||
      input_schema->field(1).type != DataType::kString) {
    return Status::InvalidArgument(
        "recode_assign expects a (colname STRING, colval STRING) input");
  }
  return Schema::Make({{"colname", DataType::kString},
                       {"colval", DataType::kString},
                       {"recodeval", DataType::kInt64}});
}

Status RecodeAssignUdf::ProcessPartition(const TableUdfContext& context,
                                         RowIterator* input, RowSink* output) {
  (void)context;
  std::map<std::string, int64_t> counters;
  bool counted = false;
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, input->Next(&row));
    if (!has) break;
    if (!counted) {
      counted = true;
      if (workers_with_data_.fetch_add(1) > 0) {
        return Status::FailedPrecondition(
            "recode_assign input must be gathered on one worker; add an "
            "ORDER BY to the distinct-values query");
      }
    }
    if (row[0].is_null() || row[1].is_null()) {
      return Status::InvalidArgument("NULL in distinct-values input");
    }
    const int64_t code = ++counters[row[0].string_value()];
    RETURN_IF_ERROR(
        output->Push(Row{row[0], row[1], Value::Int64(code)}));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CodeApplyUdf

Result<SchemaPtr> CodeApplyUdf::Bind(const SchemaPtr& input_schema,
                                     const std::vector<Value>& args) {
  if (input_schema == nullptr) {
    return Status::InvalidArgument("coding UDF needs an input relation");
  }
  if (args.size() != 1 || !args[0].is_string()) {
    return Status::InvalidArgument(
        "coding UDF needs a 'col:k' / 'col=l1|l2' string argument");
  }
  ASSIGN_OR_RETURN(std::vector<CodedColumnSpec> specs,
                   ParseCodedColumnSpecs(args[0].string_value()));

  input_schema_ = input_schema;
  dispatch_.assign(static_cast<size_t>(input_schema->num_fields()), -1);
  std::vector<Field> fields;
  std::map<int, const CodedColumnSpec*> by_index;
  for (const CodedColumnSpec& spec : specs) {
    ASSIGN_OR_RETURN(int index, input_schema->RequireField(spec.column));
    if (input_schema->field(index).type != DataType::kInt64) {
      return Status::InvalidArgument(
          "column '" + spec.column +
          "' must be recoded to INT64 before coding; it is " +
          std::string(DataTypeToString(input_schema->field(index).type)));
    }
    if (!by_index.emplace(index, &spec).second) {
      return Status::InvalidArgument("column coded twice: " + spec.column);
    }
  }
  const DataType generated_type = scheme_ == CodingScheme::kOrthogonal
                                      ? DataType::kDouble
                                      : DataType::kInt64;
  for (int i = 0; i < input_schema->num_fields(); ++i) {
    auto coded = by_index.find(i);
    if (coded == by_index.end()) {
      fields.push_back(input_schema->field(i));
      continue;
    }
    const CodedColumnSpec& spec = *coded->second;
    BoundColumn bound;
    bound.input_index = i;
    bound.cardinality = spec.cardinality;
    ASSIGN_OR_RETURN(bound.matrix, CodingMatrix(scheme_, spec.cardinality));
    dispatch_[static_cast<size_t>(i)] = static_cast<int>(coded_.size());
    coded_.push_back(std::move(bound));
    for (const std::string& name : CodedColumnNames(spec, scheme_)) {
      fields.push_back(Field{name, generated_type});
    }
  }
  return Schema::Make(std::move(fields));
}

Status CodeApplyUdf::ProcessPartition(const TableUdfContext& context,
                                      RowIterator* input, RowSink* output) {
  (void)context;
  return ColumnarEnabled() ? ProcessColumnar(input, output)
                           : ProcessRows(input, output);
}

Status CodeApplyUdf::ProcessColumnar(RowIterator* input,
                                     RowSink* output) const {
  constexpr size_t kChunkRows = 1024;
  const DataType generated_type = scheme_ == CodingScheme::kOrthogonal
                                      ? DataType::kDouble
                                      : DataType::kInt64;
  ColumnBatch batch(input_schema_);
  std::vector<std::vector<Column>> generated(coded_.size());
  Row row;
  bool done = false;
  while (!done) {
    batch.Clear();
    batch.Reserve(kChunkRows);
    while (batch.num_rows() < kChunkRows) {
      ASSIGN_OR_RETURN(bool has, input->Next(&row));
      if (!has) {
        done = true;
        break;
      }
      RETURN_IF_ERROR(batch.AppendRow(row));
    }
    if (batch.empty()) break;
    for (size_t c = 0; c < coded_.size(); ++c) {
      const BoundColumn& bound = coded_[c];
      RETURN_IF_ERROR(ApplyCodingKernel(
          batch.column(static_cast<size_t>(bound.input_index)),
          batch.num_rows(), bound.cardinality, bound.matrix, generated_type,
          &generated[c]));
    }
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      Row out;
      for (size_t i = 0; i < dispatch_.size(); ++i) {
        const int coded_index = dispatch_[i];
        if (coded_index < 0) {
          out.push_back(batch.ValueAt(r, i));
          continue;
        }
        for (const Column& g : generated[static_cast<size_t>(coded_index)]) {
          out.push_back(generated_type == DataType::kDouble
                            ? Value::Double(g.doubles[r])
                            : Value::Int64(g.ints[r]));
        }
      }
      RETURN_IF_ERROR(output->Push(std::move(out)));
    }
  }
  return Status::OK();
}

Status CodeApplyUdf::ProcessRows(RowIterator* input, RowSink* output) const {
  const DataType generated_type = scheme_ == CodingScheme::kOrthogonal
                                      ? DataType::kDouble
                                      : DataType::kInt64;
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, input->Next(&row));
    if (!has) break;
    Row out;
    for (size_t i = 0; i < row.size(); ++i) {
      const int coded_index = dispatch_[i];
      if (coded_index < 0) {
        out.push_back(std::move(row[i]));
        continue;
      }
      const BoundColumn& bound = coded_[static_cast<size_t>(coded_index)];
      if (!row[i].is_int64()) {
        return Status::InvalidArgument("coded column has non-integer value");
      }
      const int64_t level = row[i].int64_value();
      if (level < 1 || level > bound.cardinality) {
        return Status::OutOfRange(
            "recoded value " + std::to_string(level) + " outside [1, " +
            std::to_string(bound.cardinality) + "]");
      }
      for (double v : bound.matrix[static_cast<size_t>(level - 1)]) {
        out.push_back(generated_type == DataType::kDouble
                          ? Value::Double(v)
                          : Value::Int64(static_cast<int64_t>(v)));
      }
    }
    RETURN_IF_ERROR(output->Push(std::move(out)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------

Status RegisterTransformUdfs(SqlEngine* engine) {
  TableUdfRegistry* registry = engine->table_udfs();
  auto register_once = [registry](const std::string& name,
                                  TableUdfFactory factory) -> Status {
    if (registry->Contains(name)) return Status::OK();
    return registry->Register(name, std::move(factory));
  };
  RETURN_IF_ERROR(register_once("recode_local_distinct", [] {
    return std::make_shared<RecodeLocalDistinctUdf>();
  }));
  RETURN_IF_ERROR(register_once(
      "recode_assign", [] { return std::make_shared<RecodeAssignUdf>(); }));
  RETURN_IF_ERROR(register_once("dummy_code", [] {
    return std::make_shared<CodeApplyUdf>(CodingScheme::kDummy);
  }));
  RETURN_IF_ERROR(register_once("effect_code", [] {
    return std::make_shared<CodeApplyUdf>(CodingScheme::kEffect);
  }));
  RETURN_IF_ERROR(register_once("orthogonal_code", [] {
    return std::make_shared<CodeApplyUdf>(CodingScheme::kOrthogonal);
  }));
  return Status::OK();
}

}  // namespace sqlink
