file(REMOVE_RECURSE
  "libsqlink_stream.a"
)
