#ifndef SQLINK_SQL_QUERY_STATS_H_
#define SQLINK_SQL_QUERY_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sql/plan.h"

namespace sqlink {

/// Runtime actuals of one plan node, accumulated across the worker threads
/// that execute it. All fields are atomics: pipeline iterators on different
/// workers flush into the same slot, and the ops endpoint reads them while
/// the query is still running.
struct OperatorActuals {
  std::atomic<int64_t> rows{0};          ///< Rows produced (all workers).
  std::atomic<int64_t> batches{0};       ///< ColumnBatches produced.
  std::atomic<int64_t> wall_micros{0};   ///< Inclusive time, summed over workers.
  std::atomic<int64_t> peak_bytes{0};    ///< Max observed state size (build/dedup).
  std::atomic<int64_t> build_rows{0};    ///< Join build rows / DISTINCT set size.
  std::atomic<int64_t> invocations{0};   ///< Worker pipelines that ran the node.

  void AddRows(int64_t n) { rows.fetch_add(n, std::memory_order_relaxed); }
  void AddBatches(int64_t n) { batches.fetch_add(n, std::memory_order_relaxed); }
  void AddMicros(int64_t n) {
    wall_micros.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBuildRows(int64_t n) {
    build_rows.fetch_add(n, std::memory_order_relaxed);
  }
  void AddInvocation() { invocations.fetch_add(1, std::memory_order_relaxed); }
  void MaxPeakBytes(int64_t candidate) {
    int64_t seen = peak_bytes.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !peak_bytes.compare_exchange_weak(seen, candidate,
                                             std::memory_order_relaxed)) {
    }
  }
};

/// Planner-estimate vs runtime-actual cardinality error for one node:
/// max(est/actual, actual/est), both clamped to >= 1 row so empty results
/// stay finite. 1.0 is a perfect estimate.
double QError(double estimated_rows, double actual_rows);

/// Assigns pre-order node ids (root = 0) to every node of a plan tree and
/// returns the node count. Safe to call repeatedly on the same tree.
int AssignPlanNodeIds(const PlanPtr& plan);

/// Per-query stats tree: one OperatorActuals per plan node, keyed by the
/// pre-order node id AssignPlanNodeIds stamped into the plan. Constructed
/// before execution (snapshotting labels and estimates), filled in by the
/// executor, rendered by EXPLAIN ANALYZE and the /queries endpoint.
class QueryStats {
 public:
  struct NodeInfo {
    int id = 0;
    int parent = -1;  ///< Pre-order id of the parent; -1 for the root.
    int depth = 0;
    std::string label;  ///< PlanNode::ToString() at plan time.
    double estimated_rows = 0;
  };

  /// Walks the plan (which must already carry node ids) and sizes the tree.
  explicit QueryStats(const PlanPtr& plan);

  /// The actuals slot for `node_id`; nullptr when out of range (a plan that
  /// was never numbered reports node_id -1 everywhere).
  OperatorActuals* actuals(int node_id);
  const OperatorActuals* actuals(int node_id) const;

  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Total rows the root operator produced (== result cardinality).
  int64_t RootActualRows() const;

  /// Worst per-node q-error over the tree; `worst_node` (optional) receives
  /// the offending node id.
  double WorstQError(int* worst_node = nullptr) const;

  /// The `n` slowest operators by recorded wall time (inclusive), as
  /// (label, micros) pairs, slowest first. Slow-query log material.
  std::vector<std::pair<std::string, int64_t>> TopByTime(size_t n) const;

  /// EXPLAIN ANALYZE rendering: the plan tree with estimates and actuals
  /// side by side, one node per line, indented two spaces per level.
  std::string ToText() const;

  /// The stats tree as a JSON array of node objects (/queries endpoint).
  void AppendJson(std::string* out) const;

 private:
  void Walk(const PlanNode& node, int parent, int depth);

  std::vector<NodeInfo> nodes_;      // Indexed by node id (pre-order).
  std::vector<OperatorActuals> actuals_;
};

}  // namespace sqlink

#endif  // SQLINK_SQL_QUERY_STATS_H_
