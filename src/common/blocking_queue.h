#ifndef SQLINK_COMMON_BLOCKING_QUEUE_H_
#define SQLINK_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace sqlink {

/// Bounded multi-producer multi-consumer blocking queue with close
/// semantics. Used for exchange operators and streaming channels.
///
/// - Push blocks while the queue is full; returns false if the queue was
///   closed (the item is dropped).
/// - Pop blocks while the queue is empty; returns nullopt once the queue is
///   closed *and* drained.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks until there is room or the queue is closed. Returns true if the
  /// item was enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Like Pop but gives up after `timeout`. `timed_out` (optional)
  /// distinguishes a timeout from closed-and-drained.
  std::optional<T> PopFor(std::chrono::milliseconds timeout,
                          bool* timed_out = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = not_empty_.wait_for(
        lock, timeout, [this] { return closed_ || !items_.empty(); });
    if (timed_out != nullptr) *timed_out = !ready;
    if (!ready || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// After Close, pushes fail and pops drain the remaining items then
  /// return nullopt. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_BLOCKING_QUEUE_H_
