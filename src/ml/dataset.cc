#include "ml/dataset.h"

#include "common/status_macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace sqlink::ml {

namespace {

double NumericOrZero(const Value& value) {
  if (value.is_null()) return 0.0;
  auto d = value.AsDouble();
  return d.ok() ? *d : 0.0;
}

/// Columnar analogue of NumericOrZero: NULLs and strings are 0, exactly as
/// AsDouble-based boxing would produce.
double NumericAt(const Column& col, size_t row) {
  if (col.IsNull(row)) return 0.0;
  switch (col.type) {
    case DataType::kBool:
      return col.bools[row] != 0 ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(col.ints[row]);
    case DataType::kDouble:
      return col.doubles[row];
    case DataType::kString:
      return 0.0;
  }
  return 0.0;
}

/// Validates the label/feature selection against `schema` and resolves the
/// feature indices (shared by the row and columnar constructors).
Result<std::vector<int>> ResolveFeatures(
    const SchemaPtr& schema, const std::vector<std::string>& feature_columns) {
  std::vector<int> feature_indices;
  feature_indices.reserve(feature_columns.size());
  for (const std::string& name : feature_columns) {
    ASSIGN_OR_RETURN(int index, schema->RequireField(name));
    const DataType type = schema->field(index).type;
    if (type == DataType::kString) {
      return Status::InvalidArgument(
          "feature column '" + name +
          "' is categorical (STRING); recode it first (see In-SQL "
          "transformations)");
    }
    feature_indices.push_back(index);
  }
  return feature_indices;
}

std::vector<std::string> AutoFeatures(const SchemaPtr& schema,
                                      const std::string& label_column) {
  std::vector<std::string> features;
  for (const Field& field : schema->fields()) {
    if (!EqualsIgnoreCase(field.name, label_column)) {
      features.push_back(field.name);
    }
  }
  return features;
}

}  // namespace

Result<Dataset> Dataset::FromRows(
    const RowDataset& rows, const std::string& label_column,
    const std::vector<std::string>& feature_columns) {
  ASSIGN_OR_RETURN(int label_index, rows.schema->RequireField(label_column));
  ASSIGN_OR_RETURN(std::vector<int> feature_indices,
                   ResolveFeatures(rows.schema, feature_columns));

  std::vector<std::vector<LabeledPoint>> partitions(rows.partitions.size());
  ParallelFor(rows.partitions.size(), [&](size_t p) {
    partitions[p].reserve(rows.partitions[p].size());
    for (const Row& row : rows.partitions[p]) {
      LabeledPoint point;
      point.label = NumericOrZero(row[static_cast<size_t>(label_index)]);
      point.features.reserve(feature_indices.size());
      for (int f : feature_indices) {
        point.features.push_back(NumericOrZero(row[static_cast<size_t>(f)]));
      }
      partitions[p].push_back(std::move(point));
    }
  });
  return Dataset(std::move(partitions), feature_columns.size());
}

Result<Dataset> Dataset::FromRowsAutoFeatures(const RowDataset& rows,
                                              const std::string& label_column) {
  return FromRows(rows, label_column, AutoFeatures(rows.schema, label_column));
}

Result<Dataset> Dataset::FromColumns(
    const ColumnDataset& columns, const std::string& label_column,
    const std::vector<std::string>& feature_columns) {
  if (columns.schema == nullptr) {
    return Status::InvalidArgument("column dataset has no schema");
  }
  ASSIGN_OR_RETURN(int label_index, columns.schema->RequireField(label_column));
  ASSIGN_OR_RETURN(std::vector<int> feature_indices,
                   ResolveFeatures(columns.schema, feature_columns));

  const size_t width = feature_indices.size();
  std::vector<std::vector<LabeledPoint>> partitions(columns.partitions.size());
  ParallelFor(columns.partitions.size(), [&](size_t p) {
    const ColumnBatch& batch = columns.partitions[p];
    const size_t rows = batch.num_rows();
    std::vector<LabeledPoint>& out = partitions[p];
    out.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      out[r].features.resize(width);
    }
    // Column-major gathers: one type dispatch per column, then a tight pass
    // over its contiguous vector.
    const Column& label = batch.column(static_cast<size_t>(label_index));
    for (size_t r = 0; r < rows; ++r) {
      out[r].label = NumericAt(label, r);
    }
    for (size_t j = 0; j < width; ++j) {
      const Column& col =
          batch.column(static_cast<size_t>(feature_indices[j]));
      switch (col.type) {
        case DataType::kBool:
          for (size_t r = 0; r < rows; ++r) {
            out[r].features[j] =
                !col.IsNull(r) && col.bools[r] != 0 ? 1.0 : 0.0;
          }
          break;
        case DataType::kInt64:
          for (size_t r = 0; r < rows; ++r) {
            out[r].features[j] =
                col.IsNull(r) ? 0.0 : static_cast<double>(col.ints[r]);
          }
          break;
        case DataType::kDouble:
          for (size_t r = 0; r < rows; ++r) {
            out[r].features[j] = col.IsNull(r) ? 0.0 : col.doubles[r];
          }
          break;
        case DataType::kString:
          break;  // Rejected by ResolveFeatures.
      }
    }
  });
  return Dataset(std::move(partitions), width);
}

Result<Dataset> Dataset::FromColumnsAutoFeatures(
    const ColumnDataset& columns, const std::string& label_column) {
  if (columns.schema == nullptr) {
    return Status::InvalidArgument("column dataset has no schema");
  }
  return FromColumns(columns, label_column,
                     AutoFeatures(columns.schema, label_column));
}

}  // namespace sqlink::ml
